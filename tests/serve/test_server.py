"""Readout server tests: correctness, concurrency, backpressure, lifecycle."""

import asyncio
import concurrent.futures
import threading
import time

import numpy as np
import pytest

from repro.core import make_design
from repro.engine import ReadoutEngine
from repro.readout import plan_feedlines
from repro.serve import (ReadoutServer, ServeShard, ServerClosedError,
                         ServerOverloadedError, build_sharded_server)


@pytest.fixture(scope="module")
def splits(request):
    return request.getfixturevalue("small_splits")


@pytest.fixture(scope="module")
def sharded_server(splits):
    """A 2-shard float64 server over the deterministic 'mf' design."""
    train, val, _ = splits
    server = build_sharded_server(("mf",), train, val, n_shards=2,
                                  dtype=np.float64, max_wait_ms=0.5)
    with server:
        yield server


@pytest.fixture(scope="module")
def reference_bits(splits):
    """Bit-exact per-shard 'mf' predictions, stitched to device order."""
    train, val, test = splits
    full = np.empty((test.n_traces, test.n_qubits), dtype=np.int64)
    for feedline in plan_feedlines(test.n_qubits, 2):
        idx = list(feedline.qubit_indices)
        design = make_design("mf").fit(train.select_qubits(idx),
                                       val.select_qubits(idx))
        full[:, idx] = design.predict_bits(test.select_qubits(idx))
    return full


class TestPredictions:
    def test_multi_trace_matches_per_shard_reference(self, sharded_server,
                                                     splits, reference_bits):
        _, _, test = splits
        response = sharded_server.predict(test.demod[:40])
        np.testing.assert_array_equal(response.bits_for("mf"),
                                      reference_bits[:40])

    def test_single_trace_request_unwraps(self, sharded_server, splits,
                                          reference_bits):
        _, _, test = splits
        response = sharded_server.predict(test.demod[3])
        assert response.bits_for().shape == (test.n_qubits,)
        np.testing.assert_array_equal(response.bits_for(), reference_bits[3])

    def test_concurrent_submissions_all_resolve(self, sharded_server,
                                                splits, reference_bits):
        _, _, test = splits
        futures = [sharded_server.submit(test.demod[i]) for i in range(30)]
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(future.result(timeout=10).bits_for(),
                                          reference_bits[i])

    def test_response_metadata(self, sharded_server, splits):
        _, _, test = splits
        response = sharded_server.predict(test.demod[:5])
        assert response.latency_s > 0
        assert response.batch_traces >= 5

    def test_asyncio_submission(self, sharded_server, splits,
                                reference_bits):
        _, _, test = splits

        async def fan_out():
            return await asyncio.gather(*[
                sharded_server.predict_async(test.demod[i]) for i in range(8)
            ])

        responses = asyncio.run(fan_out())
        for i, response in enumerate(responses):
            np.testing.assert_array_equal(response.bits_for(),
                                          reference_bits[i])

    def test_stats_track_requests(self, sharded_server, splits):
        _, _, test = splits
        before = sharded_server.stats.completed
        sharded_server.predict(test.demod[:2])
        snapshot = sharded_server.stats.snapshot()
        assert snapshot["completed"] == before + 1
        assert snapshot["p50_ms"] > 0
        assert snapshot["throughput_traces_per_s"] > 0

    def test_engine_stats_exposed(self, sharded_server):
        per_shard = sharded_server.engine_stats()
        assert set(per_shard) == {0, 1}
        assert all(s["traces"] > 0 for s in per_shard.values())


class TestValidation:
    def test_wrong_qubit_count_rejected(self, sharded_server):
        with pytest.raises(ValueError, match="serves 5 qubits"):
            sharded_server.submit(np.zeros((3, 2, 20)))

    def test_wrong_rank_rejected(self, sharded_server):
        with pytest.raises(ValueError, match="traces must be"):
            sharded_server.submit(np.zeros((5, 20)))

    def test_empty_request_rejected(self, sharded_server):
        with pytest.raises(ValueError, match="at least one trace"):
            sharded_server.submit(np.zeros((0, 5, 2, 20)))

    def test_no_shards_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ReadoutServer([])

    def test_overlapping_shards_rejected(self, splits):
        train, val, _ = splits
        design = {"mf": make_design("mf").fit(train, val)}
        shard = ServeShard(feedline=plan_feedlines(5, 1)[0],
                           engine=ReadoutEngine(design),
                           device=train.device)
        with pytest.raises(ValueError, match="overlap"):
            ReadoutServer([shard, shard])

    def test_gap_in_coverage_rejected(self, splits):
        train, val, _ = splits
        feedline = plan_feedlines(5, 2)[1]      # qubits 3-4: gap below
        idx = list(feedline.qubit_indices)
        sub = train.select_qubits(idx)
        design = {"mf": make_design("mf").fit(sub, val.select_qubits(idx))}
        shard = ServeShard(feedline=feedline, engine=ReadoutEngine(design),
                           device=sub.device)
        with pytest.raises(ValueError, match="cover"):
            ReadoutServer([shard])

    def test_mismatched_designs_rejected(self, splits):
        train, val, _ = splits
        shards = []
        for feedline, names in zip(plan_feedlines(5, 2),
                                   [("mf",), ("centroid",)]):
            idx = list(feedline.qubit_indices)
            sub_train = train.select_qubits(idx)
            designs = {n: make_design(n).fit(sub_train,
                                             val.select_qubits(idx))
                       for n in names}
            shards.append(ServeShard(feedline=feedline,
                                     engine=ReadoutEngine(designs),
                                     device=sub_train.device))
        with pytest.raises(ValueError, match="same designs"):
            ReadoutServer(shards)


class _SlowEngine:
    """Engine stub whose predictions take a configurable time."""

    design_names = ["mf"]

    def __init__(self, delay_s=0.02, fail=False):
        self.delay_s = delay_s
        self.fail = fail

    def predict_traces(self, demod, device):
        time.sleep(self.delay_s)
        if self.fail:
            raise RuntimeError("shard exploded")
        return {"mf": np.zeros((demod.shape[0], demod.shape[1]),
                               dtype=np.int64)}


def _stub_server(device, **kwargs):
    shard = ServeShard(feedline=plan_feedlines(device.n_qubits, 1)[0],
                       engine=kwargs.pop("engine", _SlowEngine()),
                       device=device)
    return ReadoutServer([shard], **kwargs)


class TestBackpressure:
    def test_reject_raises_and_counts(self, splits):
        _, _, test = splits
        server = _stub_server(test.device, max_batch_traces=1,
                              max_wait_ms=0.0, max_queue_requests=2)
        with server:
            rejected = 0
            futures = []
            for i in range(30):
                try:
                    futures.append(server.submit(test.demod[0]))
                except ServerOverloadedError:
                    rejected += 1
            assert rejected > 0
            assert server.stats.rejected == rejected
            for future in futures:
                future.result(timeout=10)

    def test_shed_fails_oldest_future(self, splits):
        _, _, test = splits
        server = _stub_server(test.device, max_batch_traces=1,
                              max_wait_ms=0.0, max_queue_requests=2,
                              overload="shed")
        with server:
            futures = [server.submit(test.demod[0]) for _ in range(30)]
            outcomes = []
            for future in futures:
                try:
                    future.result(timeout=10)
                    outcomes.append("ok")
                except ServerOverloadedError:
                    outcomes.append("shed")
            assert outcomes.count("shed") == server.stats.shed
            assert outcomes.count("shed") > 0
            # The newest request is never the victim.
            assert outcomes[-1] == "ok"


class TestFailures:
    def test_shard_failure_fails_request(self, splits):
        _, _, test = splits
        server = _stub_server(test.device, engine=_SlowEngine(0.0, fail=True))
        with server:
            future = server.submit(test.demod[0])
            with pytest.raises(RuntimeError, match="shard exploded"):
                future.result(timeout=10)
            assert server.stats.failed == 1

    def test_cancelled_future_does_not_kill_worker(self, splits):
        # A client timing out (asyncio.wait_for cancels the wrapped
        # future) must not take the shard worker thread down with it.
        _, _, test = splits
        server = _stub_server(test.device, engine=_SlowEngine(0.05),
                              max_batch_traces=1, max_wait_ms=0.0)
        with server:
            doomed = server.submit(test.demod[0])
            doomed.cancel()
            # The next request is served by the same worker thread.
            response = server.predict(test.demod[0], timeout=10)
            assert response.bits_for("mf").shape == (test.n_qubits,)

    def test_failure_skips_cancelled_futures(self, splits):
        _, _, test = splits
        server = _stub_server(test.device,
                              engine=_SlowEngine(0.05, fail=True),
                              max_batch_traces=1, max_wait_ms=0.0)
        with server:
            cancelled = server.submit(test.demod[0])
            cancelled.cancel()
            failed = server.submit(test.demod[0])
            with pytest.raises(RuntimeError, match="shard exploded"):
                failed.result(timeout=10)


class TestResponseAccess:
    def test_unknown_design_lists_available(self, sharded_server, splits):
        _, _, test = splits
        response = sharded_server.predict(test.demod[0])
        with pytest.raises(KeyError, match="available.*mf"):
            response.bits_for("mf-rmf-nn")

    def test_implicit_design_requires_sole_design(self, splits):
        train, val, test = splits
        server = build_sharded_server(("mf", "centroid"), train, val,
                                      max_wait_ms=0.5)
        with server:
            response = server.predict(test.demod[0])
            with pytest.raises(ValueError, match="name one"):
                response.bits_for()
            # Naming a hosted design still works.
            assert response.bits_for("centroid").shape == (5,)

    def test_pre_completion_access_times_out(self, splits):
        # A future polled before its batch resolves raises TimeoutError
        # rather than returning a half-built response.
        _, _, test = splits
        server = _stub_server(test.device, engine=_SlowEngine(0.2))
        with server:
            future = server.submit(test.demod[0])
            with pytest.raises(concurrent.futures.TimeoutError):
                future.result(timeout=0.01)
            assert future.result(timeout=10).bits_for("mf").shape == (5,)


class TestHotSwap:
    def test_swap_takes_effect_at_batch_boundary(self, splits):
        _, _, test = splits

        class _ConstantEngine:
            design_names = ["mf"]

            def __init__(self, value):
                self.value = value

            def predict_traces(self, demod, device):
                return {"mf": np.full((demod.shape[0], demod.shape[1]),
                                      self.value, dtype=np.int64)}

        server = _stub_server(test.device, engine=_ConstantEngine(0),
                              max_wait_ms=0.1)
        with server:
            assert server.predict(test.demod[0]).bits_for("mf").sum() == 0
            version = server.swap_engine(0, _ConstantEngine(1))
            assert version == 1
            assert server.predict(test.demod[0]).bits_for("mf").sum() == 5
            assert server.stats.snapshot()["swaps"] == 1
            assert server.stats.snapshot()["model_versions"] == {"0": 1}

    def test_swap_under_concurrent_traffic_drops_nothing(self, splits):
        # Hammer the server while swapping between two fitted engines:
        # every request resolves, zero failures, versions advance.
        train, val, test = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      max_batch_traces=8, max_wait_ms=0.2)
        engines = [ReadoutEngine({"mf": make_design("mf").fit(train, val)})
                   for _ in range(2)]
        with server:
            futures = []
            for i in range(60):
                futures.append(server.submit(test.demod[i % test.n_traces]))
                if i % 10 == 9:
                    server.swap_engine(0, engines[(i // 10) % 2])
            for future in futures:
                assert future.result(timeout=10).bits_for("mf").shape == (5,)
        assert server.stats.failed == 0
        assert server.stats.swaps == 6
        assert server.stats.model_versions[0] == 6

    def test_swap_validates_designs_and_shard(self, sharded_server, splits):
        train, val, _ = splits
        wrong = ReadoutEngine(
            {"centroid": make_design("centroid").fit(train, val)})
        with pytest.raises(ValueError, match="serves"):
            sharded_server.swap_engine(0, wrong)
        good = sharded_server.shards[0].engine
        with pytest.raises(ValueError, match="no shard"):
            sharded_server.swap_engine(7, good)

    def test_swap_after_stop_rejected(self, splits):
        _, _, test = splits
        server = _stub_server(test.device)
        server.start()
        engine = server.shards[0].engine
        server.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            server.swap_engine(0, engine)


class TestLifecycle:
    def test_stop_drains_queued_requests(self, splits):
        _, _, test = splits
        server = _stub_server(test.device, max_batch_traces=1,
                              max_wait_ms=0.0)
        futures = [server.submit(test.demod[0]) for _ in range(5)]
        server.stop()
        assert all(f.done() for f in futures)

    def test_submit_after_stop_raises(self, splits):
        _, _, test = splits
        server = _stub_server(test.device)
        with server:
            server.predict(test.demod[0])
        with pytest.raises(RuntimeError, match="stopped"):
            server.submit(test.demod[0])

    def test_restart_rejected(self, splits):
        _, _, test = splits
        server = _stub_server(test.device)
        server.start()
        server.stop()
        with pytest.raises(RuntimeError, match="restarted"):
            server.start()

    def test_stop_is_idempotent(self, splits):
        _, _, test = splits
        server = _stub_server(test.device)
        server.start()
        server.stop()
        server.stop()

    def test_threads_terminate(self, splits):
        _, _, test = splits
        before = threading.active_count()
        server = _stub_server(test.device)
        with server:
            server.predict(test.demod[0])
        assert threading.active_count() == before

    def test_stop_fails_backlog_fast_but_finishes_in_flight(self, splits):
        # Regression test for the deterministic-drain contract: a deep
        # backlog behind a slow engine must not block stop() — the batch
        # being computed completes, everything queued behind it fails
        # with ServerClosedError instead of hanging (or being computed).
        _, _, test = splits
        delay = 0.3
        server = _stub_server(test.device, engine=_SlowEngine(delay),
                              max_batch_traces=1, max_wait_ms=0.0)
        server.start()
        futures = [server.submit(test.demod[0]) for _ in range(8)]
        time.sleep(0.05)              # worker is mid-batch on request 0
        started = time.perf_counter()
        server.stop()
        stop_elapsed = time.perf_counter() - started
        # Bounded by ~one in-flight batch, not the 8-deep backlog.
        assert stop_elapsed < 4 * delay
        assert all(f.done() for f in futures)
        outcomes = []
        for future in futures:
            try:
                future.result()
                outcomes.append("ok")
            except ServerClosedError:
                outcomes.append("closed")
        assert outcomes[0] == "ok"            # in-flight batch completed
        assert "closed" in outcomes           # the backlog failed fast
        assert server.stats.failed == outcomes.count("closed")

    def test_submit_vs_stop_race_is_typed_and_reconciled(self, splits):
        # submit() reads the stopped flag without the state lock; hammer
        # the window where stop() lands mid-submit and require (a) every
        # refusal is the typed ServerClosedError and (b) the stats ledger
        # still reconciles: every counted submission has exactly one
        # counted outcome.
        _, _, test = splits
        trace = test.demod[0]
        for _ in range(3):
            server = _stub_server(test.device, engine=_SlowEngine(0.0),
                                  max_batch_traces=8, max_wait_ms=0.1)
            server.start()
            start = threading.Barrier(3)
            futures, untyped = [], []
            lock = threading.Lock()

            def hammer():
                start.wait()
                for _ in range(200):
                    try:
                        future = server.submit(trace)
                    except ServerClosedError:
                        continue          # typed refusal: the contract
                    except RuntimeError as exc:
                        with lock:
                            untyped.append(exc)
                        continue
                    with lock:
                        futures.append(future)

            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for thread in threads:
                thread.start()
            start.wait()
            time.sleep(0.002)
            server.stop()
            for thread in threads:
                thread.join(timeout=10)
            assert untyped == []
            assert all(f.done() for f in futures)
            stats = server.stats
            assert stats.submitted == stats.completed + stats.failed

    def test_response_slab_recycles_when_every_future_cancelled(self,
                                                                splits):
        # A batch whose every client went away must return its pooled
        # response slab — ownership only transfers with a resolved future.
        _, _, test = splits

        class _GateEngine:
            design_names = ["mf"]

            def __init__(self):
                self.gate = threading.Event()

            def predict_traces(self, demod, device):
                assert self.gate.wait(10)
                return {"mf": np.zeros((demod.shape[0], demod.shape[1]),
                                       dtype=np.int64)}

        engine = _GateEngine()
        server = _stub_server(test.device, engine=engine,
                              max_batch_traces=4, max_wait_ms=0.0)
        with server:
            pool = server._response_pool
            doomed = server.submit(test.demod[:2])
            time.sleep(0.05)              # batch in flight, engine gated
            assert doomed.cancel()
            engine.gate.set()
            deadline = time.perf_counter() + 5
            while pool.free_count() == 0 and time.perf_counter() < deadline:
                time.sleep(0.01)
            assert pool.free_count() == 1     # recycled, nobody saw it
            # The next live request reuses that very slab...
            response = server.predict(test.demod[:2], timeout=10)
            assert server.stats.response_slab_reused == 1
            # ...and keeps it: its views escaped to the client.
            assert response.bits_for("mf").shape == (2, test.n_qubits)
            assert pool.free_count() == 0


class TestHotPathMemory:
    def test_oversized_request_spans_slab_boundary_correctly(self, splits,
                                                             reference_bits):
        # A single request larger than max_batch_traces bypasses the slab
        # and is served alone — interleaved with slab-sized traffic, every
        # response must still match the per-shard reference bit for bit.
        train, val, test = splits
        server = build_sharded_server(("mf",), train, val, n_shards=2,
                                      dtype=np.float64, max_batch_traces=8,
                                      max_wait_ms=0.5)
        with server:
            small_a = server.submit(test.demod[:3])
            oversized = server.submit(test.demod[:20])   # > 8: slab bypass
            small_b = server.submit(test.demod[5:10])
            np.testing.assert_array_equal(
                oversized.result(timeout=10).bits_for("mf"),
                reference_bits[:20])
            np.testing.assert_array_equal(
                small_a.result(timeout=10).bits_for("mf"),
                reference_bits[:3])
            np.testing.assert_array_equal(
                small_b.result(timeout=10).bits_for("mf"),
                reference_bits[5:10])

    def test_steady_state_recycles_slabs_with_zero_fallbacks(self, splits):
        _, _, test = splits
        server = _stub_server(test.device, engine=_SlowEngine(0.0),
                              max_batch_traces=4, max_wait_ms=0.0)
        with server:
            for _ in range(12):
                server.predict(test.demod[:2], timeout=10)
        snapshot = server.stats.snapshot()
        # Trace slabs converge to pure recycling: one allocation ever.
        assert snapshot["trace_slab_allocated"] == 1
        assert snapshot["trace_slab_reused"] >= 10
        assert snapshot["trace_slab_fallbacks"] == 0
        # Response slabs recycle only when no view escaped (ownership
        # moves to resolved futures), so the combined ratio is bounded
        # below by the trace side alone.
        assert snapshot["response_slab_fallbacks"] == 0
        assert snapshot["slab_reuse_ratio"] > 0.3
        assert snapshot["dispatch_lag_p99_ms"] >= 0.0

    def test_float16_trace_path_serves_quantized_slabs(self, splits):
        train, val, test = splits
        server = build_sharded_server(("mf",), train, val, n_shards=2,
                                      max_wait_ms=0.5,
                                      trace_dtype=np.float16)
        reference = build_sharded_server(("mf",), train, val, n_shards=2,
                                         max_wait_ms=0.5)
        assert server.trace_dtype == np.dtype(np.float16)
        with server, reference:
            quantized = server.predict(test.demod[:40], timeout=10)
            full = reference.predict(test.demod[:40], timeout=10)
        agree = np.mean(quantized.bits_for("mf") == full.bits_for("mf"))
        # Half-precision traces cost a little accuracy, never correctness.
        assert agree >= 0.9
        assert quantized.bits_for("mf").shape == full.bits_for("mf").shape
