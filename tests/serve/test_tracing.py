"""End-to-end request tracing through the serving pipeline.

The acceptance bar: a sampled request under load yields a *complete*
stitched trace — every instant from submit to resolve is covered by some
span (``gaps(eps) == []``) — on both backends, including the process
backend where worker-side inference spans cross the spawn boundary via
the trace ring's id headers.
"""

import numpy as np
import pytest

from repro.serve import build_sharded_server

#: Tolerated uncovered time between adjacent instrumentation points.
#: Real micro-gaps are a few microseconds (the time between one span's
#: final perf_counter() and the next's); the margin absorbs scheduler
#: noise on loaded CI machines without masking a missing pipeline stage.
EPSILON_S = 5e-3

#: Spans every completed trace must carry regardless of backend.
COMMON_SPANS = {"submit", "slab_copy", "queue_wait", "batch_seal",
                "dispatch", "resolve"}


@pytest.fixture(scope="module")
def splits(request):
    return request.getfixturevalue("small_splits")


@pytest.fixture(scope="module")
def traced_thread_server(splits):
    train, val, _ = splits
    server = build_sharded_server(("mf",), train, val, n_shards=2,
                                  max_wait_ms=0.5, trace_sample_rate=1.0)
    with server:
        yield server


@pytest.fixture(scope="module")
def traced_process_server(splits):
    train, val, _ = splits
    server = build_sharded_server(("mf",), train, val, n_shards=2,
                                  backend="process", max_wait_ms=0.5,
                                  trace_sample_rate=1.0)
    with server:
        yield server


def _spans_by_name(trace):
    spans = {}
    for name, start, end in trace.sorted_spans():
        spans.setdefault(name, []).append((start, end))
    return spans


class TestThreadBackendTracing:
    def test_every_request_traced_at_rate_one(self, traced_thread_server,
                                              splits):
        _, _, test = splits
        recorder = traced_thread_server.flight_recorder
        before = recorder.recorded
        futures = [traced_thread_server.submit(test.demod[i])
                   for i in range(16)]
        for future in futures:
            future.result(30)
        assert recorder.recorded == before + 16

    def test_stitched_trace_is_complete(self, traced_thread_server, splits):
        _, _, test = splits
        futures = [traced_thread_server.submit(test.demod[i])
                   for i in range(24)]
        for future in futures:
            future.result(30)
        for trace in traced_thread_server.flight_recorder.traces():
            names = set(trace.span_names())
            assert COMMON_SPANS <= names, names
            assert any(n.startswith("worker_inference/") for n in names)
            assert any(n.startswith("response_scatter/") for n in names)
            assert trace.gaps(EPSILON_S) == [], trace.to_dict()

    def test_span_ordering_is_consistent(self, traced_thread_server, splits):
        _, _, test = splits
        traced_thread_server.submit(test.demod[0]).result(30)
        trace = traced_thread_server.flight_recorder.traces()[-1]
        spans = _spans_by_name(trace)
        # submit starts the trace; resolve ends it.
        assert spans["submit"][0][0] == trace.started_at
        assert trace.span_names()[-1] == "resolve"
        resolve_end = spans["resolve"][0][1]
        assert resolve_end <= trace.ended_at
        # dispatch precedes every worker inference, which precedes its
        # shard's response scatter.
        dispatch_start = spans["dispatch"][0][0]
        for name, intervals in spans.items():
            if name.startswith("worker_inference/"):
                shard = name.rsplit("/", 1)[1]
                scatter = spans[f"response_scatter/{shard}"]
                for (w_start, w_end), (s_start, _) in zip(intervals, scatter):
                    assert dispatch_start <= w_start <= w_end
                    assert w_end <= s_start + EPSILON_S


class TestSampling:
    def test_fractional_sampling_under_load(self, splits):
        train, val, test = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      max_wait_ms=0.5,
                                      trace_sample_rate=0.25)
        with server:
            futures = [server.submit(test.demod[i % 8]) for i in range(40)]
            for future in futures:
                future.result(30)
            # deterministic accumulator: exactly every 4th request
            assert server.flight_recorder.recorded == 10

    def test_rate_zero_records_nothing(self, splits):
        train, val, test = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      max_wait_ms=0.5)
        with server:
            server.predict(test.demod[:4])
            assert server.flight_recorder.recorded == 0
            assert not server.tracer.enabled


class TestProcessBackendTracing:
    def test_trace_crosses_the_spawn_boundary(self, traced_process_server,
                                              splits):
        """Worker-side spans stitch into the parent-side context."""
        _, _, test = splits
        futures = [traced_process_server.submit(test.demod[i])
                   for i in range(24)]
        for future in futures:
            future.result(30)
        traces = traced_process_server.flight_recorder.traces()
        assert traces
        for trace in traces:
            names = set(trace.span_names())
            assert COMMON_SPANS <= names, names
            # process-backend vocabulary: ring hop + remote inference
            assert any(n.startswith("ring_submit/") for n in names)
            assert any(n.startswith("ring_transit/") for n in names)
            assert any(n.startswith("worker_inference/") for n in names)
            assert any(n.startswith("response_scatter/") for n in names)
            assert trace.gaps(EPSILON_S) == [], trace.to_dict()

    def test_worker_spans_ordered_within_ring_transit(
            self, traced_process_server, splits):
        _, _, test = splits
        traced_process_server.submit(test.demod[0]).result(30)
        trace = traced_process_server.flight_recorder.traces()[-1]
        spans = _spans_by_name(trace)
        for name, intervals in spans.items():
            if not name.startswith("worker_inference/"):
                continue
            shard = name.rsplit("/", 1)[1]
            (t_start, t_end) = spans[f"ring_transit/{shard}"][0]
            for w_start, w_end in intervals:
                # The worker measured inference on the same system-wide
                # monotonic clock: it must land inside the parent's
                # send-to-receive window (small epsilon for clock reads
                # straddling the pipe).
                assert t_start - EPSILON_S <= w_start
                assert w_end <= t_end + EPSILON_S

    def test_traces_survive_coalescing(self, splits):
        """Batches packed into one ring slot keep per-request traces."""
        train, val, test = splits
        server = build_sharded_server(
            ("mf",), train, val, n_shards=1, backend="process",
            max_wait_ms=0.0, max_batch_traces=2, trace_sample_rate=1.0,
            backend_options={"coalesce_batches": 4})
        with server:
            futures = [server.submit(test.demod[i % 8]) for i in range(32)]
            for future in futures:
                future.result(30)
            snapshot = server.stats.snapshot()
            assert snapshot["ring_coalesce_ratio"] > 1.0, \
                "load did not exercise coalescing"
            traces = server.flight_recorder.traces()
            assert traces
            for trace in traces:
                names = set(trace.span_names())
                assert any(n.startswith("worker_inference/")
                           for n in names), names
                assert trace.gaps(EPSILON_S) == [], trace.to_dict()
