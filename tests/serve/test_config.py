"""ServerConfig façade: defaults, the legacy-kwarg shim, builder wiring."""

import dataclasses
import types

import numpy as np
import pytest

from repro.core import FAST_CONFIG
from repro.readout.sharding import plan_feedlines
from repro.serve import (ReadoutServer, ServeShard, ServerConfig,
                         build_sharded_server)

#: The historical keyword defaults of ReadoutServer.__init__, frozen
#: here on purpose: ServerConfig must keep them bit-for-bit so the
#: redesign changes spelling, never behavior.
LEGACY_DEFAULTS = {
    "max_batch_traces": 256,
    "max_wait_ms": 2.0,
    "max_queue_requests": 1024,
    "overload": "reject",
    "trace_dtype": None,
    "latency_window": 8192,
    "backend": "thread",
    "backend_options": None,
    "trace_sample_rate": 0.0,
    "flight_recorder": None,
    "metrics": None,
    "telemetry_interval_s": None,
    "alert_rules": None,
    "bundle_dir": None,
}


class StubEngine:
    design_names = ["mf"]

    def predict_traces(self, demod, device):
        return {"mf": (demod[:, :, 0, 0] > 0).astype(np.int64)}


def one_shard():
    device = types.SimpleNamespace(n_qubits=5, n_bins=40)
    return [ServeShard(feedline=plan_feedlines(5, 1)[0],
                       engine=StubEngine(), device=device)]


class TestDefaults:
    def test_defaults_match_the_legacy_constructor(self):
        config = ServerConfig()
        for field in dataclasses.fields(ServerConfig):
            assert field.name in LEGACY_DEFAULTS, (
                f"new knob {field.name!r}: add it to LEGACY_DEFAULTS "
                f"deliberately, with its default pinned")
            assert getattr(config, field.name) \
                == LEGACY_DEFAULTS[field.name], field.name
        assert len(dataclasses.fields(ServerConfig)) == len(LEGACY_DEFAULTS)

    def test_no_arguments_builds_default_config_without_warning(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            server = ReadoutServer(one_shard())
        assert server.config == ServerConfig()


class TestLegacyShim:
    def test_legacy_kwargs_land_on_the_same_config(self):
        """The satellite pin: every legacy keyword folds into the
        identical ServerConfig the redesigned spelling produces."""
        knobs = {"max_batch_traces": 128, "max_wait_ms": 0.5,
                 "max_queue_requests": 64, "overload": "shed",
                 "trace_dtype": np.float32, "latency_window": 256,
                 "trace_sample_rate": 0.25}
        with pytest.warns(DeprecationWarning, match="ServerConfig"):
            legacy = ReadoutServer(one_shard(), **knobs)
        modern = ReadoutServer(one_shard(), ServerConfig(**knobs))
        assert legacy.config == modern.config == ServerConfig(**knobs)
        # And the knobs observably took effect on both.
        for server in (legacy, modern):
            assert server.max_batch_traces == 128
            assert server.trace_dtype == np.dtype(np.float32)

    def test_mixing_config_and_kwargs_is_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            ReadoutServer(one_shard(), ServerConfig(), max_wait_ms=1.0)

    def test_unknown_kwarg_is_rejected(self):
        with pytest.raises(TypeError, match="max_wait_msec"):
            ReadoutServer(one_shard(), max_wait_msec=1.0)

    def test_non_config_positional_is_rejected(self):
        with pytest.raises(TypeError, match="must be a ServerConfig"):
            ReadoutServer(one_shard(), {"max_wait_ms": 1.0})

    def test_config_is_kept_on_the_server(self):
        config = ServerConfig(max_wait_ms=0.25)
        server = ReadoutServer(one_shard(), config)
        assert server.config is config


class TestBuilderWiring:
    @pytest.fixture(scope="class")
    def splits(self, request):
        return request.getfixturevalue("small_splits")

    def test_builder_accepts_config(self, splits):
        train, val, _ = splits
        server = build_sharded_server(
            ("mf",), train, val, n_shards=2, training=FAST_CONFIG,
            config=ServerConfig(max_wait_ms=0.5, max_batch_traces=64))
        assert server.config.max_wait_ms == 0.5
        assert server.config.max_batch_traces == 64
        assert len(server.shards) == 2

    def test_builder_rejects_config_plus_legacy(self, splits):
        train, val, _ = splits
        with pytest.raises(TypeError, match="not both"):
            build_sharded_server(("mf",), train, val, n_shards=1,
                                 training=FAST_CONFIG,
                                 config=ServerConfig(), max_wait_ms=1.0)
        with pytest.raises(TypeError, match="not both"):
            build_sharded_server(("mf",), train, val, n_shards=1,
                                 training=FAST_CONFIG,
                                 config=ServerConfig(), backend="process")

    def test_builder_legacy_kwargs_fold_into_config(self, splits):
        train, val, _ = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      training=FAST_CONFIG,
                                      max_wait_ms=0.5)
        assert server.config == ServerConfig(max_wait_ms=0.5)
