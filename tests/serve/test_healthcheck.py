"""End-to-end health probes: per-shard verdicts on both backends."""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.serve import HealthReport, ShardHealth, build_sharded_server


@pytest.fixture(scope="module")
def splits(request):
    return request.getfixturevalue("small_splits")


@pytest.fixture(scope="module")
def thread_server(splits):
    train, val, _ = splits
    server = build_sharded_server(("mf",), train, val, n_shards=2,
                                  max_wait_ms=0.5)
    with server:
        yield server


class TestShardHealthModel:
    def test_healthy_requires_alive_and_an_answer(self):
        answered = ShardHealth(shard_index=0, alive=True, round_trip_ms=1.0,
                               engine_version=0, backlog=0)
        silent = ShardHealth(shard_index=0, alive=True,
                             round_trip_ms=float("nan"),
                             engine_version=0, backlog=0)
        dead = ShardHealth(shard_index=0, alive=False, round_trip_ms=1.0,
                           engine_version=0, backlog=0)
        assert answered.healthy
        assert not silent.healthy
        assert not dead.healthy

    def test_report_as_dict_is_json_safe(self):
        report = HealthReport(healthy=True, probe_ok=True, budget_s=1.0,
                              shards=[ShardHealth(
                                  shard_index=0, alive=True,
                                  round_trip_ms=1.25, engine_version=2,
                                  backlog=0, pid=123)])
        payload = report.as_dict()
        json.dumps(payload)
        assert payload["shards"][0]["healthy"] is True


class TestThreadBackend:
    def test_healthy_server_all_shards_answer(self, thread_server):
        report = thread_server.healthcheck(budget_s=10.0)
        assert report.healthy and report.probe_ok
        assert report.error == ""
        assert sorted(s.shard_index for s in report.shards) == [0, 1]
        for shard in report.shards:
            assert shard.alive and shard.healthy
            assert np.isfinite(shard.round_trip_ms)
            assert shard.round_trip_ms > 0
            assert shard.engine_version == 0

    def test_probe_counts_in_stats(self, thread_server):
        before = thread_server.stats.snapshot()["submitted"]
        thread_server.healthcheck(budget_s=10.0)
        assert thread_server.stats.snapshot()["submitted"] == before + 1

    def test_budget_validation(self, thread_server):
        with pytest.raises(ValueError):
            thread_server.healthcheck(budget_s=0.0)

    def test_healthcheck_before_any_traffic(self, splits):
        # The probe must derive trace geometry without having seen a
        # request (and lazily start the server).
        train, val, _ = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      max_wait_ms=0.5)
        with server:
            report = server.healthcheck(budget_s=10.0)
        assert report.healthy

    def test_stopped_server_reports_unhealthy(self, splits):
        train, val, _ = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      max_wait_ms=0.5)
        with server:
            server.predict(np.zeros_like(server._probe_traces()))
        report = server.healthcheck(budget_s=2.0)
        assert not report.healthy
        assert not report.probe_ok
        assert report.error


class TestProcessBackend:
    def test_healthy_then_killed_worker_flagged(self, splits):
        train, val, _ = splits
        server = build_sharded_server(("mf",), train, val, n_shards=2,
                                      backend="process", max_wait_ms=0.5)
        with server:
            report = server.healthcheck(budget_s=30.0)
            assert report.healthy
            pids = {s.shard_index: s.pid for s in report.shards}
            assert all(pid is not None for pid in pids.values())

            os.kill(pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            # Death detection is asynchronous (sentinel thread); poll the
            # probe until the verdict flips.
            while time.monotonic() < deadline:
                report = server.healthcheck(budget_s=5.0)
                if not report.healthy:
                    break
                time.sleep(0.1)
            assert not report.healthy
            by_index = {s.shard_index: s for s in report.shards}
            assert not by_index[0].alive
            assert not by_index[0].healthy
            assert "exit code" in by_index[0].detail
            # The surviving shard is still individually alive.
            assert by_index[1].alive
