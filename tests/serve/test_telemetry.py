"""Continuous monitoring wired through the server: telemetry, alerts,
auto-bundles, and the console — on live traffic."""

import os
import signal
import time

import numpy as np
import pytest

from repro.calib import (CalibrationWorker, DriftingSimulator,
                         DriftSchedule, Recalibrator)
from repro.experiments.drift_recovery import drifting_two_qubit_device
from repro.obs import SeriesRule, load_bundle, render_console
from repro.serve import build_sharded_server
from repro.serve.loadgen import closed_loop


@pytest.fixture(scope="module")
def splits(request):
    return request.getfixturevalue("small_splits")


class TestServerWiring:
    def test_monitoring_off_by_default(self, splits):
        train, val, _ = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      max_wait_ms=0.5)
        assert server.telemetry is None
        assert server.alerts is None

    def test_alert_options_require_telemetry(self, splits):
        train, val, _ = splits
        with pytest.raises(ValueError):
            build_sharded_server(("mf",), train, val, n_shards=1,
                                 bundle_dir="/tmp/x")
        with pytest.raises(ValueError):
            build_sharded_server(("mf",), train, val, n_shards=1,
                                 alert_rules=[])

    def test_sampler_lifecycle_follows_server(self, splits, tmp_path):
        train, val, test = splits
        server = build_sharded_server(
            ("mf",), train, val, n_shards=2, max_wait_ms=0.5,
            telemetry_interval_s=0.02)
        with server:
            assert server.telemetry.running
            closed_loop(server, test, n_clients=2, requests_per_client=5)
            deadline = time.monotonic() + 10.0
            store = server.telemetry.store
            while time.monotonic() < deadline:
                latest = store.latest("serve.completed")
                if latest is not None and latest >= 10.0:
                    break
                time.sleep(0.01)
            assert store.latest("serve.completed") >= 10.0
            # The whole stack lands in one store: serve stats, engine
            # counters, recorder stats, the sampler's own health, and
            # the alert gauge.
            names = store.names()
            assert any(n.startswith("engine.") for n in names)
            assert any(n.startswith("flight_recorder.") for n in names)
            assert store.latest("telemetry.samples") >= 1.0
            assert store.latest("metrics.alerts_active") == 0.0
        assert not server.telemetry.running
        # Clean traffic, default rules: nothing fired.
        assert server.alerts.total_fired() == 0

    def test_calib_worker_joins_server_registry(self):
        simulator = DriftingSimulator(drifting_two_qubit_device(),
                                      DriftSchedule([]))
        calib = simulator.calibration_set(100, np.random.default_rng(5))
        train, val, _ = calib.split(np.random.default_rng(6), 0.6, 0.15)
        server = build_sharded_server(
            ("mf",), train, val, n_shards=2, max_wait_ms=0.5,
            telemetry_interval_s=0.02)
        recalibrator = Recalibrator(server, calibration_shots_per_state=60)
        worker = CalibrationWorker(server, recalibrator, simulator,
                                   poll_interval_s=0.005)
        with server:
            with worker:
                traffic = simulator.generate_traffic(
                    50, np.random.default_rng(7))
                server.predict(traffic.demod)
                deadline = time.monotonic() + 10.0
                store = server.telemetry.store
                while time.monotonic() < deadline:
                    if (store.latest("calib.ticks") or 0.0) >= 1.0:
                        break
                    time.sleep(0.01)
                # Maintenance counters ride the same telemetry stream.
                assert store.latest("calib.ticks") >= 1.0
                assert store.latest("calib.running") == 1.0


class TestWorkerDeathAlert:
    def test_kill_fires_once_bundles_and_renders(self, splits, tmp_path):
        train, val, test = splits
        bundle_root = str(tmp_path / "bundles")
        server = build_sharded_server(
            ("mf",), train, val, n_shards=2, backend="process",
            max_wait_ms=0.5, telemetry_interval_s=0.02,
            trace_sample_rate=0.25, bundle_dir=bundle_root)
        with server:
            closed_loop(server, test, n_clients=2, requests_per_client=5)
            report = server.healthcheck(budget_s=30.0)
            assert report.healthy
            assert server.last_health is report

            pids = {s.shard_index: s.pid for s in report.shards}
            os.kill(pids[0], signal.SIGKILL)
            state = server.alerts.state("worker_death")
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and not state.firing:
                # Death detection needs traffic on the dead ring.
                try:
                    closed_loop(server, test, n_clients=1,
                                requests_per_client=2)
                except Exception:
                    pass
                time.sleep(0.05)
            assert state.firing

            # Edge-triggered: the death stays inside the rule window for
            # many more samples, yet fires exactly once.
            samples_before = server.telemetry.samples
            deadline = time.monotonic() + 10.0
            while (time.monotonic() < deadline
                   and server.telemetry.samples < samples_before + 10):
                time.sleep(0.01)
            assert state.fired_count == 1

            # The firing edge wrote a postmortem bundle automatically.
            bundle_dir = os.path.join(bundle_root, "alert-worker_death-1")
            assert os.path.isdir(bundle_dir)
            loaded = load_bundle(bundle_dir)
            assert loaded["alerts"]["rules"]["worker_death"]["firing"]
            assert loaded["manifest"]["reason"] == "alert:worker_death"
            deaths = loaded["telemetry"]["series"]["serve.worker_deaths"]
            assert deaths[0][1] == 0.0 and deaths[-1][1] >= 1.0

            # And the console renders it (same path as the CLI).
            text = render_console(bundle_dir)
            assert "[FIRING] worker_death (critical)" in text
            assert "worker deaths" in text
        # One fire, no spam — stop() did not re-fire it either.
        assert server.alerts.state("worker_death").fired_count == 1


class TestCustomRules:
    def test_custom_rule_replaces_defaults(self, splits):
        train, val, test = splits
        rule = SeriesRule("any_traffic", "serve.completed", 0.0,
                          mode="delta", window_s=60.0)
        server = build_sharded_server(
            ("mf",), train, val, n_shards=1, max_wait_ms=0.5,
            telemetry_interval_s=0.02, alert_rules=[rule])
        with server:
            assert [r.name for r in server.alerts.rules] == ["any_traffic"]
            closed_loop(server, test, n_clients=1, requests_per_client=3)
            state = server.alerts.state("any_traffic")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not state.firing:
                time.sleep(0.01)
            assert state.firing
        assert state.fired_count == 1


class TestHealthCaching:
    def test_last_health_none_until_probed(self, splits):
        train, val, _ = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      max_wait_ms=0.5)
        assert server.last_health is None
        with server:
            report = server.healthcheck(budget_s=10.0)
        assert server.last_health is report

    def test_probe_geometry_unchanged(self, splits):
        # The monitoring additions must not disturb the probe path.
        train, val, _ = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      max_wait_ms=0.5,
                                      telemetry_interval_s=0.05)
        with server:
            probe = server._probe_traces()
            assert probe.shape[1] == server.n_qubits
            assert np.all(probe == 0)
