"""Load generator tests: determinism, accounting, arrival disciplines."""

import numpy as np
import pytest

from repro.serve import closed_loop, open_loop
from repro.serve.loadgen import LoadReport, _payloads


@pytest.fixture(scope="module")
def served(request):
    from repro.serve import build_sharded_server
    train, val, test = request.getfixturevalue("small_splits")
    server = build_sharded_server(("mf",), train, val, n_shards=1,
                                  max_wait_ms=0.5)
    with server:
        yield server, test


class TestPayloads:
    def test_deterministic_given_seed(self, small_splits):
        _, _, test = small_splits
        a = _payloads(test.demod, 10, 2, np.random.default_rng(7))
        b = _payloads(test.demod, 10, 2, np.random.default_rng(7))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_single_trace_payloads_are_unbatched(self, small_splits):
        _, _, test = small_splits
        payloads = _payloads(test.demod, 4, 1, np.random.default_rng(0))
        assert all(p.ndim == 3 for p in payloads)

    def test_multi_trace_payloads(self, small_splits):
        _, _, test = small_splits
        payloads = _payloads(test.demod, 4, 3, np.random.default_rng(0))
        assert all(p.shape[0] == 3 for p in payloads)


class TestClosedLoop:
    def test_accounting(self, served):
        server, test = served
        report = closed_loop(server, test, n_clients=3,
                             requests_per_client=10, traces_per_request=2,
                             seed=1)
        assert report.requests == 30
        assert report.completed == 30
        assert report.rejected == 0
        assert report.traces_done == 60
        assert report.latencies_s.shape == (30,)
        assert report.throughput_rps() > 0
        assert report.traces_per_s() == pytest.approx(
            2 * report.throughput_rps())

    def test_summary_keys(self, served):
        server, test = served
        report = closed_loop(server, test, n_clients=2,
                             requests_per_client=5, seed=2)
        summary = report.summary()
        for key in ("throughput_rps", "traces_per_s", "p50_ms", "p99_ms"):
            assert key in summary
        assert summary["p50_ms"] <= summary["p99_ms"]


class TestOpenLoop:
    def test_uniform_pacing_completes_all(self, served):
        server, test = served
        report = open_loop(server, test, rate_rps=2000.0, n_requests=40,
                           pattern="uniform", seed=3)
        assert report.completed == 40
        assert report.pattern == "open-loop/uniform"
        # 40 requests paced 0.5 ms apart occupy at least ~20 ms.
        assert report.elapsed_s >= 0.015

    def test_poisson_arrivals(self, served):
        server, test = served
        report = open_loop(server, test, rate_rps=3000.0, n_requests=30,
                           pattern="poisson", seed=4)
        assert report.completed + report.rejected == 30

    def test_unknown_pattern_rejected(self, served):
        server, test = served
        with pytest.raises(ValueError, match="pattern"):
            open_loop(server, test, pattern="bursty")


class TestFailureAccounting:
    def test_engine_failures_are_counted_not_fatal(self, small_splits):
        from repro.readout import plan_feedlines
        from repro.serve import ReadoutServer, ServeShard

        train, _, test = small_splits

        class _FailingEngine:
            design_names = ["mf"]

            def predict_traces(self, demod, device):
                raise RuntimeError("shard exploded")

        shard = ServeShard(feedline=plan_feedlines(test.n_qubits, 1)[0],
                           engine=_FailingEngine(), device=test.device)
        with ReadoutServer([shard], max_wait_ms=0.0) as server:
            report = closed_loop(server, test, n_clients=2,
                                 requests_per_client=4, seed=6)
        assert report.completed == 0
        assert report.failed == 8
        assert report.summary()["failed"] == 8


class TestReportMath:
    def test_empty_latencies(self):
        report = LoadReport(pattern="x", requests=0, completed=0,
                            rejected=0, traces_done=0, elapsed_s=0.0)
        assert np.isnan(report.latency_ms(50))
        assert report.throughput_rps() == 0.0

    def test_percentile_math_pinned(self):
        # 2000 known latencies: every percentile is an exact function of
        # np.percentile over the full (unwindowed) retained array, so
        # p999 is a real order statistic, not an extrapolation.
        latencies_s = np.arange(1, 2001) / 1000.0   # 1ms .. 2000ms
        report = LoadReport(pattern="x", requests=2000, completed=2000,
                            rejected=0, traces_done=2000, elapsed_s=2.0,
                            latencies_s=latencies_s)
        for percentile in (50, 95, 99, 99.9):
            expected = 1000.0 * float(np.percentile(latencies_s, percentile))
            assert report.latency_ms(percentile) == pytest.approx(expected)
        assert report.latency_ms(99.9) == pytest.approx(1998.001)

    def test_summary_reports_full_tail(self):
        report = LoadReport(pattern="x", requests=4, completed=4,
                            rejected=0, traces_done=4, elapsed_s=1.0,
                            latencies_s=np.array([0.001, 0.002, 0.003, 0.1]))
        summary = report.summary()
        assert (summary["p50_ms"] <= summary["p95_ms"]
                <= summary["p99_ms"] <= summary["p999_ms"])
        assert summary["p999_ms"] == pytest.approx(100.0, rel=0.01)
