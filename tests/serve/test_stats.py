"""ServerStats tests: percentiles, swaps, and concurrent recording."""

import threading

import numpy as np
import pytest

from repro.serve import ServerStats


class TestPercentiles:
    def test_empty_window_is_nan(self):
        snapshot = ServerStats().snapshot()
        assert np.isnan(snapshot["p50_ms"])
        assert snapshot["completed"] == 0

    def test_percentiles_ordered(self):
        stats = ServerStats()
        for latency in np.linspace(0.001, 0.1, 200):
            stats.record_done(1, float(latency), now=1.0)
        snapshot = stats.snapshot()
        assert snapshot["p50_ms"] <= snapshot["p95_ms"] <= snapshot["p99_ms"]
        assert snapshot["p50_ms"] == pytest.approx(50.5, rel=0.05)

    def test_window_is_bounded(self):
        stats = ServerStats(latency_window=16)
        for _ in range(100):
            stats.record_done(1, 1.0, now=1.0)
        for _ in range(16):
            stats.record_done(1, 0.001, now=2.0)
        # Only the recent window survives: old 1s latencies evicted.
        assert stats.snapshot()["p99_ms"] == pytest.approx(1.0, rel=0.1)


class TestConcurrentRecording:
    def test_snapshot_races_with_recorders(self):
        # Worker threads hammer every recording path while the main
        # thread snapshots continuously: no exceptions, and the final
        # counters add up exactly.
        stats = ServerStats(latency_window=256)
        n_threads, per_thread = 8, 500
        start = threading.Barrier(n_threads + 1)

        def recorder(seed):
            rng = np.random.default_rng(seed)
            start.wait()
            for i in range(per_thread):
                stats.record_submit(2, now=float(i))
                stats.record_done(2, float(rng.random()), now=float(i))
                stats.record_batch(1, 2)
                if i % 50 == 0:
                    stats.record_swap(seed % 2)

        threads = [threading.Thread(target=recorder, args=(t,), daemon=True)
                   for t in range(n_threads)]
        for thread in threads:
            thread.start()
        start.wait()
        snapshots = []
        while any(t.is_alive() for t in threads):
            snapshots.append(stats.snapshot())
        for thread in threads:
            thread.join()

        final = stats.snapshot()
        total = n_threads * per_thread
        assert final["submitted"] == total
        assert final["completed"] == total
        assert final["traces_done"] == 2 * total
        assert final["swaps"] == n_threads * (per_thread // 50)
        # Per-shard versions sum to the total swap count.
        assert sum(final["model_versions"].values()) == final["swaps"]
        # Every mid-run snapshot was internally consistent.
        for snapshot in snapshots:
            assert snapshot["completed"] <= snapshot["submitted"]
            assert not np.isnan(snapshot["p50_ms"]) or snapshot["completed"] == 0

    def test_swap_versions_monotone_per_shard(self):
        stats = ServerStats()
        assert stats.record_swap(0) == 1
        assert stats.record_swap(1) == 1
        assert stats.record_swap(0) == 2
        assert stats.snapshot()["model_versions"] == {"0": 2, "1": 1}
        assert stats.swaps == 3


class TestBatchAccounting:
    def test_mean_batch_traces_counts_batched_not_completed(self):
        # Regression: the metric used to divide completed traces by all
        # flushed batches, so failures deflated "amortization achieved".
        stats = ServerStats()
        stats.record_batch(2, 100)
        stats.record_batch(1, 50)            # this batch will fail
        stats.record_done(100, 0.01, now=1.0)
        stats.record_failure()
        assert stats.mean_batch_traces() == 75.0     # (100 + 50) / 2
        snapshot = stats.snapshot()
        assert snapshot["batched_traces"] == 150
        assert snapshot["mean_batch_traces"] == 75.0
        assert snapshot["traces_done"] == 100

    def test_mean_batch_traces_empty(self):
        assert ServerStats().mean_batch_traces() == 0.0

    def test_probe_counters(self):
        stats = ServerStats()
        stats.record_probe(16)
        stats.record_probe(24)
        snapshot = stats.snapshot()
        assert snapshot["probes"] == 2
        assert snapshot["probe_traces"] == 40


class TestHotPathCounters:
    def test_slab_events_split_by_pool_and_kind(self):
        stats = ServerStats()
        stats.record_slab("trace", "allocated")
        stats.record_slab("trace", "reused")
        stats.record_slab("trace", "reused")
        stats.record_slab("response", "allocated")
        stats.record_slab("response", "fallback")
        snapshot = stats.snapshot()
        assert snapshot["trace_slab_allocated"] == 1
        assert snapshot["trace_slab_reused"] == 2
        assert snapshot["trace_slab_fallbacks"] == 0
        assert snapshot["response_slab_allocated"] == 1
        assert snapshot["response_slab_fallbacks"] == 1
        # 2 reuses out of 5 acquires across both pools.
        assert snapshot["slab_reuse_ratio"] == pytest.approx(0.4)

    def test_slab_ratio_is_zero_safe(self):
        # No acquires yet must yield 0.0, not NaN — benchmark JSON is
        # written with allow_nan=False.
        snapshot = ServerStats().snapshot()
        assert snapshot["slab_reuse_ratio"] == 0.0
        assert snapshot["ring_coalesce_ratio"] == 0.0
        assert snapshot["dispatch_lag_p50_ms"] == 0.0
        assert snapshot["dispatch_lag_p99_ms"] == 0.0

    def test_dispatch_lag_percentiles(self):
        stats = ServerStats()
        for lag in np.linspace(0.001, 0.01, 100):
            stats.record_dispatch_lag(float(lag))
        snapshot = stats.snapshot()
        assert 0 < snapshot["dispatch_lag_p50_ms"] \
            <= snapshot["dispatch_lag_p99_ms"]
        assert snapshot["dispatch_lag_p50_ms"] == pytest.approx(5.5,
                                                                rel=0.05)

    def test_ring_coalesce_ratio(self):
        stats = ServerStats()
        stats.record_ring_flush(3)
        stats.record_ring_flush(1)
        snapshot = stats.snapshot()
        assert snapshot["ring_flushes"] == 2
        assert snapshot["ring_batches"] == 4
        assert snapshot["ring_coalesce_ratio"] == 2.0


class TestTailPercentiles:
    def test_percentile_key_pinned(self):
        from repro.serve import LATENCY_PERCENTILES, percentile_key
        assert LATENCY_PERCENTILES == (50, 95, 99, 99.9)
        assert percentile_key(50) == "p50_ms"
        assert percentile_key(99.9) == "p999_ms"

    def test_snapshot_reports_p999(self):
        stats = ServerStats()
        for latency in np.linspace(0.001, 1.0, 2000):
            stats.record_done(1, float(latency), now=1.0)
        snapshot = stats.snapshot()
        assert (snapshot["p50_ms"] <= snapshot["p95_ms"]
                <= snapshot["p99_ms"] <= snapshot["p999_ms"])
        # The default window (8192) holds all 2000 samples, so p999 is
        # real order-statistic math, pinned against numpy directly.
        expected = 1000.0 * float(np.percentile(
            np.linspace(0.001, 1.0, 2000), 99.9))
        assert snapshot["p999_ms"] == pytest.approx(expected)


class TestLifecycleEdges:
    def test_snapshot_before_any_traffic(self):
        # Regression: every derived metric must be well-defined on a
        # fresh server — throughput/uptime 0.0, never None or an error.
        snapshot = ServerStats().snapshot()
        assert snapshot["throughput_traces_per_s"] == 0.0
        assert snapshot["uptime_s"] == 0.0

    def test_throughput_zero_between_submit_and_first_completion(self):
        stats = ServerStats()
        stats.record_submit(4, now=1.0)
        assert stats.snapshot()["throughput_traces_per_s"] == 0.0
        assert stats.throughput_traces_per_s() == 0.0
        # Uptime starts ticking at the first submission, though.
        assert stats.uptime_s() >= 0.0
        stats.record_done(4, 0.01, now=2.0)
        assert stats.snapshot()["throughput_traces_per_s"] == \
            pytest.approx(4.0)

    def test_completion_at_submit_instant_is_zero_not_inf(self):
        stats = ServerStats()
        stats.record_submit(1, now=1.0)
        stats.record_done(1, 0.0, now=1.0)
        assert stats.snapshot()["throughput_traces_per_s"] == 0.0

    def test_register_into_registry(self):
        from repro.obs import MetricsRegistry
        stats = ServerStats()
        registry = MetricsRegistry()
        stats.register_into(registry)
        stats.record_submit(2, now=1.0)
        stats.record_done(2, 0.01, now=2.0)
        exported = registry.export_dict()["serve"]
        assert exported["completed"] == 1
        assert exported["traces_done"] == 2
        assert "serve.completed 1" in registry.export_text()
