"""SlabPool tests: recycling identity, bounds, leak self-correction.

Also home of the hot-path allocation pins: the acceptance criterion that a
steady-state serve flush performs zero per-batch trace allocation is
asserted here at both the batcher level (flushed demod arrays are views of
one recycled slab) and the server level (slab counters converge to
reused-only).
"""

import gc

import numpy as np

from repro.serve import MicroBatcher, ServeRequest, SlabPool
from repro.serve.slab import DEFAULT_MAX_FREE, DEFAULT_MAX_OUTSTANDING


def request(n_traces=1, fill=0.0):
    return ServeRequest(
        traces=np.full((n_traces, 2, 2, 4), fill, dtype=np.float64))


class TestSlabPool:
    def test_release_then_acquire_returns_same_array(self):
        pool = SlabPool()
        slab = pool.acquire((4, 3), np.float64)
        pool.release(slab)
        again = pool.acquire((4, 3), np.float64)
        assert again is slab
        assert pool.allocated == 1 and pool.reused == 1

    def test_geometries_are_segregated(self):
        pool = SlabPool()
        a = pool.acquire((4, 3), np.float64)
        pool.release(a)
        b = pool.acquire((4, 3), np.float32)     # same shape, other dtype
        assert b is not a
        assert pool.allocated == 2

    def test_free_list_is_bounded(self):
        pool = SlabPool(max_free=2)
        slabs = [pool.acquire((8,), np.float64) for _ in range(4)]
        for slab in slabs:
            pool.release(slab)
        assert pool.free_count() == 2            # the rest were dropped

    def test_acquire_degrades_to_none_at_outstanding_bound(self):
        pool = SlabPool(max_outstanding=2)
        held = [pool.acquire((8,), np.float64) for _ in range(2)]
        assert all(s is not None for s in held)
        assert pool.acquire((8,), np.float64) is None
        assert pool.fallbacks == 1
        pool.release(held.pop())
        assert pool.acquire((8,), np.float64) is not None

    def test_leaked_slab_self_corrects_outstanding(self):
        pool = SlabPool(max_outstanding=2)
        pool.acquire((8,), np.float64)           # leaked: never released
        gc.collect()
        assert pool.outstanding == 0             # weakly tracked
        held = [pool.acquire((8,), np.float64) for _ in range(2)]
        assert all(s is not None for s in held)  # leak did not pin the bound

    def test_observer_sees_every_event(self):
        events = []
        pool = SlabPool(max_outstanding=1, observer=events.append)
        slab = pool.acquire((4,), np.float64)
        pool.acquire((4,), np.float64)           # at bound -> fallback
        pool.release(slab)
        pool.acquire((4,), np.float64)
        assert events == ["allocated", "fallback", "reused"]

    def test_defaults_are_sane(self):
        pool = SlabPool()
        assert pool.max_free == DEFAULT_MAX_FREE
        assert pool.max_outstanding == DEFAULT_MAX_OUTSTANDING


class TestZeroCopyHotPath:
    """The acceptance pin: no per-flush trace allocation, ever."""

    def test_flushed_demod_is_a_slab_view_not_a_concatenation(self):
        batcher = MicroBatcher(max_batch_traces=4, max_wait_ms=0)
        batcher.offer(request(2, fill=1.0))
        batcher.offer(request(2, fill=2.0))
        batch = batcher.gather()
        assert batch.slab is not None
        assert batch.demod.base is batch.slab    # a view, no copy
        np.testing.assert_array_equal(batch.demod[:2], 1.0)
        np.testing.assert_array_equal(batch.demod[2:], 2.0)

    def test_steady_state_reuses_one_slab_across_flushes(self):
        batcher = MicroBatcher(max_batch_traces=4, max_wait_ms=0)
        pool = batcher.slab_pool
        seen = set()
        for _ in range(5):
            for _ in range(4):
                batcher.offer(request())
            batch = batcher.gather()
            seen.add(id(batch.slab))
            batch.release_slab()
        assert pool.allocated == 1               # one slab serves them all
        assert pool.reused == 4
        assert len(seen) == 1

    def test_oversized_request_bypasses_the_slab(self):
        batcher = MicroBatcher(max_batch_traces=4, max_wait_ms=0)
        oversized = request(10)
        batcher.offer(oversized)
        batch = batcher.gather()
        assert batch.slab is None
        assert batch.demod is oversized.traces   # served from its own array
        assert batcher.slab_pool.allocated == 0
