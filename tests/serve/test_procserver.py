"""Process-backend server tests: parity, swaps, teardown, worker death.

The process backend must be observably the *same service* as the thread
backend — identical bits, identical drain semantics, identical calibration
plumbing — with the extra obligations of a multi-process system: workers
are reaped deterministically (exit codes recorded, no orphans) and a
worker death fails its traffic fast instead of hanging it.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.calib.monitors import ScoreDriftMonitor
from repro.calib.recalibrator import Recalibrator, attach_score_monitors
from repro.core import FAST_CONFIG, make_design
from repro.engine import ReadoutEngine
from repro.readout import generate_dataset, plan_feedlines
from repro.serve import (ProcessShardBackend, ReadoutServer, ServeShard,
                        ServerClosedError, ThreadShardBackend,
                        build_sharded_server)
from repro.serve.procshard import engine_to_spec


@pytest.fixture(scope="module")
def splits(request):
    return request.getfixturevalue("small_splits")


@pytest.fixture(scope="module")
def process_server(splits):
    """A 2-shard process-backend server over the deterministic 'mf' design."""
    train, val, _ = splits
    server = build_sharded_server(("mf",), train, val, n_shards=2,
                                  backend="process", max_wait_ms=0.5)
    with server:
        yield server


@pytest.fixture(scope="module")
def thread_reference_bits(splits):
    """The same fitted service on the thread backend: the parity oracle."""
    train, val, test = splits
    server = build_sharded_server(("mf",), train, val, n_shards=2,
                                  max_wait_ms=0.5)
    with server:
        return server.predict(test.demod[:60]).bits_for("mf")


class TestParity:
    def test_backend_is_selected(self, process_server):
        assert process_server.backend.name == "process"
        assert isinstance(process_server.backend, ProcessShardBackend)

    def test_bits_identical_to_thread_backend(self, process_server, splits,
                                              thread_reference_bits):
        _, _, test = splits
        response = process_server.predict(test.demod[:60])
        np.testing.assert_array_equal(response.bits_for("mf"),
                                      thread_reference_bits)

    def test_single_trace_request_unwraps(self, process_server, splits,
                                          thread_reference_bits):
        _, _, test = splits
        response = process_server.predict(test.demod[3])
        assert response.bits_for().shape == (test.n_qubits,)
        np.testing.assert_array_equal(response.bits_for(),
                                      thread_reference_bits[3])

    def test_concurrent_submissions_all_resolve(self, process_server, splits,
                                                thread_reference_bits):
        _, _, test = splits
        futures = [process_server.submit(test.demod[i]) for i in range(30)]
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(
                future.result(timeout=30).bits_for(),
                thread_reference_bits[i])

    def test_engine_stats_come_from_the_workers(self, process_server, splits):
        _, _, test = splits
        process_server.predict(test.demod[:8])
        per_shard = process_server.engine_stats()
        assert set(per_shard) == {0, 1}
        # The parent-side replica never runs inference; nonzero counters
        # prove the workers' own engines reported them back.
        assert all(stats["traces"] > 0 for stats in per_shard.values())
        for shard in process_server.shards:
            assert shard.engine.stats.traces == 0

    def test_worker_pids_are_live_children(self, process_server):
        pids = process_server.backend.worker_pids
        assert set(pids) == {0, 1}
        for pid in pids.values():
            os.kill(pid, 0)          # raises if no such process


class TestHooksMirroring:
    def test_batch_hooks_fire_in_the_parent(self, process_server, splits):
        _, _, test = splits
        seen = []

        def hook(chunk, bits):
            seen.append((chunk.demod.shape, {k: v.shape
                                             for k, v in bits.items()}))

        engine = process_server.shards[0].engine
        engine.add_batch_hook(hook)
        try:
            process_server.predict(test.demod[:12])
            deadline = time.time() + 10
            while not seen and time.time() < deadline:
                time.sleep(0.01)
        finally:
            engine.remove_batch_hook(hook)
        shard_qubits = process_server.shards[0].feedline.n_qubits
        assert seen
        shape, bit_shapes = seen[0]
        assert shape[1:] == (shard_qubits, 2, test.demod.shape[3])
        assert bit_shapes["mf"][1] == shard_qubits

    def test_score_monitors_observe_remote_batches(self, process_server,
                                                   splits):
        _, _, test = splits
        monitors = [ScoreDriftMonitor(n_qubits=s.feedline.n_qubits)
                    for s in process_server.shards]
        attach_score_monitors(process_server, monitors)
        try:
            process_server.predict(test.demod[:16])
            deadline = time.time() + 10
            while (not all(m.batches_seen for m in monitors)
                   and time.time() < deadline):
                time.sleep(0.01)
            assert all(m.batches_seen >= 1 for m in monitors)
        finally:
            for shard, monitor in zip(process_server.shards, monitors):
                shard.engine.remove_batch_hook(monitor._hook)


class TestHotSwap:
    def test_swap_ships_serialized_pipelines_to_the_worker(self, splits):
        train, val, test = splits
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      backend="process", max_wait_ms=0.5)
        # A replacement fitted on different data: its parent-side
        # predictions are the oracle for what the worker must serve.
        half = train.subset(np.arange(train.n_traces // 2))
        replacement = ReadoutEngine(
            {"mf": make_design("mf").fit(half, val)})
        expected = replacement.predict_traces(
            test.demod[:40].astype(np.float32), test.device)["mf"]
        with server:
            before = server.predict(test.demod[:40]).bits_for("mf")
            version = server.swap_engine(0, replacement)
            assert version == 1
            after = server.predict(test.demod[:40]).bits_for("mf")
        np.testing.assert_array_equal(after, expected)
        assert server.stats.model_versions[0] == 1
        assert before.shape == after.shape
        assert server.backend.exit_codes == {0: 0}

    def test_swap_rejects_unserializable_engine(self, process_server, splits):
        class _Stub:
            design_names = ["mf"]

        with pytest.raises(ValueError, match="pipelines"):
            process_server.swap_engine(0, _Stub())
        # The failed swap never half-applied: versions are untouched.
        assert 0 not in process_server.stats.model_versions

    def test_recalibrator_cycles_through_the_process_backend(self, splits):
        # The CalibrationWorker's repair primitive end to end: collect,
        # refit, validate through the live (process-backed) serve path,
        # and promote via the swap-over-pickle path.
        train, val, test = splits
        server = build_sharded_server(("mf",), train, val, n_shards=2,
                                      backend="process", max_wait_ms=0.5)
        device = test.device
        with server:
            recalibrator = Recalibrator(server,
                                        calibration_shots_per_state=8)
            report = recalibrator.recalibrate_shard(
                1, lambda shots, rng: generate_dataset(device, shots, rng),
                np.random.default_rng(5))
            assert report.shard_index == 1
            assert 0.0 <= report.candidate_fidelity <= 1.0
            assert 0.0 <= report.incumbent_fidelity <= 1.0
            if report.promoted:
                assert server.stats.model_versions[1] == report.model_version
            # Traffic still flows on the (possibly swapped) engines.
            assert server.predict(test.demod[0]).bits_for("mf").shape == (5,)
        assert server.stats.failed == 0


class TestStartupValidation:
    def test_stub_engines_rejected_before_spawning(self, splits):
        train, _, _ = splits

        class _Stub:
            design_names = ["mf"]

            def predict_traces(self, demod, device):
                return {"mf": np.zeros((demod.shape[0], demod.shape[1]),
                                       dtype=np.int64)}

        [feedline] = plan_feedlines(train.n_qubits, 1)
        server = ReadoutServer(
            [ServeShard(feedline=feedline, engine=_Stub(),
                        device=train.device)],
            backend="process")
        with pytest.raises(ValueError, match="pipelines"):
            server.start()
        server.stop()

    def test_unknown_backend_rejected(self, splits):
        train, val, _ = splits
        with pytest.raises(ValueError, match="backend must be one of"):
            build_sharded_server(("mf",), train, val, backend="fiber")

    def test_backend_options_reach_the_backend(self, splits):
        train, val, _ = splits
        with pytest.raises(ValueError, match="ring_slots"):
            build_sharded_server(("mf",), train, val, backend="process",
                                 backend_options={"ring_slots": 0})

    def test_backend_instance_refuses_stray_options(self, splits):
        train, val, _ = splits
        with pytest.raises(ValueError, match="backend_options"):
            build_sharded_server(("mf",), train, val,
                                 backend=ThreadShardBackend(),
                                 backend_options={"ring_slots": 2})

    def test_backend_instance_is_single_use(self, splits):
        # A prebuilt backend bound to one server must refuse a second:
        # reuse would fan batches across both servers' shard workers.
        train, val, test = splits
        backend = ThreadShardBackend()
        first = build_sharded_server(("mf",), train, val, backend=backend)
        with first:
            first.predict(test.demod[0])
            second = build_sharded_server(("mf",), train, val,
                                          backend=backend)
            with pytest.raises(RuntimeError, match="one server"):
                second.start()


class TestLifecycle:
    def test_stop_reaps_children_with_clean_exit_codes(self, splits):
        train, val, test = splits
        server = build_sharded_server(("mf",), train, val, n_shards=2,
                                      backend="process", max_wait_ms=0.5)
        with server:
            server.predict(test.demod[0])
            pids = dict(server.backend.worker_pids)
        assert server.backend.exit_codes == {0: 0, 1: 0}
        for pid in pids.values():
            deadline = time.time() + 5
            while time.time() < deadline:
                try:
                    os.kill(pid, 0)
                except OSError:
                    break            # gone: reaped, not orphaned
                time.sleep(0.01)
            else:
                pytest.fail(f"worker {pid} survived stop()")

    def test_stop_is_idempotent(self, splits):
        train, val, _ = splits
        server = build_sharded_server(("mf",), train, val,
                                      backend="process")
        server.start()
        server.stop()
        server.stop()
        assert server.backend.exit_codes == {0: 0}

    def test_killed_worker_fails_queued_requests_fast(self, splits):
        train, val, test = splits
        # A long flush deadline parks the burst in the batcher, so the
        # kill always lands before any of it reaches the dead worker.
        server = build_sharded_server(("mf",), train, val, n_shards=2,
                                      backend="process",
                                      max_batch_traces=256, max_wait_ms=50.0)
        with server:
            server.predict(test.demod[0], timeout=30)     # warm and live
            futures = [server.submit(test.demod[i]) for i in range(40)]
            os.kill(server.backend.worker_pids[1], signal.SIGKILL)

            outcomes = {"ok": 0, "closed": 0}
            started = time.perf_counter()
            for future in futures:
                try:
                    future.result(timeout=30)
                    outcomes["ok"] += 1
                except ServerClosedError:
                    outcomes["closed"] += 1
            elapsed = time.perf_counter() - started
            # Queued requests failed fast — no hang, typed error only.
            assert outcomes["closed"] == 40
            assert elapsed < 20
            assert server.stats.worker_deaths == 1

            # Requests after the death are refused just as fast.
            with pytest.raises(ServerClosedError, match="worker died"):
                server.predict(test.demod[0], timeout=30)
        # stop() still reaps both children; the kill is in the record.
        codes = server.backend.exit_codes
        assert codes[0] == 0
        assert codes[1] == -signal.SIGKILL
        snapshot = server.stats.snapshot()
        assert snapshot["worker_deaths"] == 1
        assert snapshot["failed"] >= 40


class TestQuantizedPath:
    def test_float16_bits_identical_across_backends(self, splits):
        # The opt-in quantized slab/ring path must be a *deterministic*
        # quantization: the same float16 traces produce the same bits
        # whether the shard engines run in threads or worker processes.
        train, val, test = splits
        thread_server = build_sharded_server(
            ("mf",), train, val, n_shards=2, max_wait_ms=0.5,
            trace_dtype=np.float16)
        process_server = build_sharded_server(
            ("mf",), train, val, n_shards=2, max_wait_ms=0.5,
            backend="process", trace_dtype=np.float16)
        with thread_server:
            via_threads = thread_server.predict(
                test.demod[:40], timeout=30).bits_for("mf")
        with process_server:
            via_processes = process_server.predict(
                test.demod[:40], timeout=30).bits_for("mf")
        np.testing.assert_array_equal(via_threads, via_processes)


class TestRingCoalescing:
    def test_backlogged_batches_share_ring_round_trips(self, splits):
        # Saturate a single-slot ring so flushed micro-batches pile up in
        # the shard's submit queue, then verify the submitter packed them:
        # strictly fewer ring flushes than batches dispatched.
        train, val, test = splits
        server = build_sharded_server(
            ("mf",), train, val, n_shards=1, backend="process",
            max_batch_traces=4, max_wait_ms=0.0,
            backend_options={"ring_slots": 1, "coalesce_batches": 4})
        with server:
            futures = [server.submit(test.demod[i % test.n_traces])
                       for i in range(64)]
            for future in futures:
                future.result(timeout=60)
        snapshot = server.stats.snapshot()
        assert snapshot["ring_batches"] >= snapshot["ring_flushes"] > 0
        assert snapshot["ring_batches"] < snapshot["batches"] * 2
        assert snapshot["ring_coalesce_ratio"] >= 1.0
        # The pile-up behind the single slot must actually coalesce.
        assert snapshot["ring_flushes"] < snapshot["ring_batches"]
        assert server.stats.failed == 0

    def test_coalescing_disabled_maps_one_batch_per_flush(self, splits):
        train, val, test = splits
        server = build_sharded_server(
            ("mf",), train, val, n_shards=1, backend="process",
            max_batch_traces=4, max_wait_ms=0.0,
            backend_options={"coalesce_batches": 1})
        with server:
            for i in range(8):
                server.predict(test.demod[i], timeout=30)
        snapshot = server.stats.snapshot()
        assert snapshot["ring_flushes"] == snapshot["ring_batches"] > 0
        assert snapshot["ring_coalesce_ratio"] == 1.0


class TestEngineSpec:
    def test_spec_round_trip_preserves_predictions(self, splits):
        from repro.serve.procshard import engine_from_spec
        train, val, test = splits
        engine = ReadoutEngine(
            {"mf": make_design("mf", FAST_CONFIG).fit(train, val)})
        rebuilt = engine_from_spec(engine_to_spec(engine))
        assert rebuilt.design_names == engine.design_names
        assert rebuilt.dtype == engine.dtype
        assert rebuilt.chunk_size == engine.chunk_size
        demod = test.demod[:20].astype(np.float32)
        np.testing.assert_array_equal(
            rebuilt.predict_traces(demod, test.device)["mf"],
            engine.predict_traces(demod, test.device)["mf"])

    def test_spec_requires_pipelines(self):
        with pytest.raises(ValueError, match="pipelines"):
            engine_to_spec(object())
