"""TraceRing tests: layout, round-trips, attach, and lifecycle."""

import numpy as np
import pytest

from repro.serve.shm import RingSpec, TraceRing


@pytest.fixture
def ring():
    ring = TraceRing.create(n_slots=2, capacity=8, trace_shape=(3, 2, 10),
                            dtype=np.float64, n_designs=2)
    yield ring
    ring.close()
    ring.unlink()


class TestRoundTrip:
    def test_request_round_trip_is_bit_exact(self, ring):
        batch = np.random.default_rng(0).normal(size=(5, 3, 2, 10))
        n = ring.write_request(1, batch)
        assert n == 5
        np.testing.assert_array_equal(ring.request_view(1, 5), batch)

    def test_response_round_trip_per_design(self, ring):
        rng = np.random.default_rng(1)
        bits = {"mf": rng.integers(0, 2, (5, 3)),
                "centroid": rng.integers(0, 2, (5, 3))}
        ring.write_response(0, bits, ("mf", "centroid"))
        out = ring.read_response(0, 5, ("mf", "centroid"))
        np.testing.assert_array_equal(out["mf"], bits["mf"])
        np.testing.assert_array_equal(out["centroid"], bits["centroid"])

    def test_slots_do_not_alias(self, ring):
        a = np.zeros((8, 3, 2, 10))
        b = np.ones((8, 3, 2, 10))
        ring.write_request(0, a)
        ring.write_request(1, b)
        np.testing.assert_array_equal(ring.request_view(0, 8), a)
        np.testing.assert_array_equal(ring.request_view(1, 8), b)

    def test_read_response_copies(self, ring):
        bits = {"mf": np.ones((4, 3), dtype=np.int64)}
        ring.write_response(0, bits, ("mf",))
        out = ring.read_response(0, 4, ("mf",))
        ring.write_response(0, {"mf": np.zeros((4, 3), dtype=np.int64)},
                            ("mf",))
        np.testing.assert_array_equal(out["mf"], 1)   # unaffected snapshot

    def test_segmented_writes_compose_one_contiguous_batch(self, ring):
        # The coalescing submit path: two micro-batches packed back to
        # back into one slot read back as a single contiguous batch.
        rng = np.random.default_rng(3)
        a = rng.normal(size=(3, 3, 2, 10))
        b = rng.normal(size=(4, 3, 2, 10))
        assert ring.write_request_at(0, 0, a) == 3
        assert ring.write_request_at(0, 3, b) == 4
        combined = ring.request_view(0, 7)
        np.testing.assert_array_equal(combined[:3], a)
        np.testing.assert_array_equal(combined[3:], b)

    def test_offset_write_casts_into_ring_dtype(self, ring):
        batch = np.ones((2, 3, 2, 10), dtype=np.float32)
        ring.write_request_at(1, 4, batch)     # ring is float64
        np.testing.assert_array_equal(ring.request_view(1, 6)[4:], 1.0)

    def test_offset_write_past_capacity_rejected(self, ring):
        with pytest.raises(ValueError, match="does not fit"):
            ring.write_request_at(0, 6, np.zeros((3, 3, 2, 10)))
        with pytest.raises(ValueError, match="does not fit"):
            ring.write_request_at(0, -1, np.zeros((1, 3, 2, 10)))

    def test_response_view_is_zero_copy_per_segment(self, ring):
        bits = {"mf": np.arange(15).reshape(5, 3),
                "centroid": np.zeros((5, 3), dtype=np.int64)}
        ring.write_response(0, bits, ("mf", "centroid"))
        view = ring.response_view(0, 0, 2, 3)      # design 0, rows 2..4
        np.testing.assert_array_equal(view, bits["mf"][2:5])
        view[:] = -1                                # writes through
        np.testing.assert_array_equal(
            ring.read_response(0, 5, ("mf",))["mf"][2:], -1)


class TestAttach:
    def test_attached_ring_shares_memory(self, ring):
        batch = np.random.default_rng(2).normal(size=(3, 3, 2, 10))
        ring.write_request(0, batch)
        other = TraceRing.attach(ring.spec.as_dict())
        try:
            np.testing.assert_array_equal(other.request_view(0, 3), batch)
            other.write_response(0, {"x": np.ones((3, 3), dtype=np.int64),
                                     "y": np.zeros((3, 3), dtype=np.int64)},
                                 ("x", "y"))
            out = ring.read_response(0, 3, ("x", "y"))
            np.testing.assert_array_equal(out["x"], 1)
        finally:
            other.close()

    def test_attach_side_never_unlinks(self, ring):
        other = TraceRing.attach(ring.spec.as_dict())
        other.unlink()               # non-owner: must be a no-op
        other.close()
        # The segment is still usable by the owner.
        ring.write_request(0, np.zeros((1, 3, 2, 10)))


class TestFit:
    def test_fits_checks_count_shape_and_dtype(self, ring):
        assert ring.fits(np.zeros((8, 3, 2, 10)))
        assert not ring.fits(np.zeros((9, 3, 2, 10)))      # too many traces
        assert not ring.fits(np.zeros((4, 3, 2, 12)))      # wrong bins
        assert not ring.fits(np.zeros((4, 3, 2, 10), dtype=np.float32))

    def test_oversized_write_rejected(self, ring):
        with pytest.raises(ValueError, match="does not fit"):
            ring.write_request(0, np.zeros((9, 3, 2, 10)))


class TestValidation:
    @pytest.mark.parametrize("kwargs, match", [
        (dict(n_slots=0, capacity=4, trace_shape=(2, 2, 5),
              dtype=np.float64, n_designs=1), "n_slots"),
        (dict(n_slots=1, capacity=0, trace_shape=(2, 2, 5),
              dtype=np.float64, n_designs=1), "capacity"),
        (dict(n_slots=1, capacity=4, trace_shape=(2, 3, 5),
              dtype=np.float64, n_designs=1), "trace_shape"),
        (dict(n_slots=1, capacity=4, trace_shape=(2, 2, 5),
              dtype=np.float64, n_designs=0), "n_designs"),
    ])
    def test_bad_geometry_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TraceRing.create(**kwargs)

    def test_close_is_idempotent(self):
        ring = TraceRing.create(n_slots=1, capacity=1, trace_shape=(1, 2, 4),
                                dtype=np.float32, n_designs=1)
        ring.close()
        ring.close()
        ring.unlink()
        ring.unlink()

    def test_spec_survives_dict_round_trip(self, ring):
        spec = RingSpec(**ring.spec.as_dict())
        assert spec == ring.spec
