"""Regenerate the design-regression fixture (``design_regression.npz``).

The fixture pins the bit predictions of every ``make_design`` name on a
fixed-seed dataset. It was generated with the pre-pipeline (seed)
implementation, so the regression test proves the stage-pipeline designs
are drop-in identical. Rerun only when the *intended* behaviour changes:

    PYTHONPATH=src python tests/data/make_design_regression.py
"""

import pathlib

import numpy as np

from repro.core import FAST_CONFIG, make_design
from repro.readout import (five_qubit_paper_device, generate_dataset,
                           single_qubit_device)

OUT = pathlib.Path(__file__).parent / "design_regression.npz"

TRUNCATE_NS = 500.0


def main():
    payload = {}

    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=30,
                            rng=np.random.default_rng(20230428))
    train, val, test = data.split(np.random.default_rng(20230429), 0.5, 0.1)

    for name in ("mf", "mf-svm", "mf-nn", "mf-rmf-svm", "mf-rmf-nn",
                 "centroid", "boxcar"):
        design = make_design(name, FAST_CONFIG).fit(train, val)
        payload[f"{name}/full"] = design.predict_bits(test)
        payload[f"{name}/truncated"] = design.predict_bits(
            test.truncate(TRUNCATE_NS))

    raw_device = single_qubit_device()
    raw_data = generate_dataset(raw_device, shots_per_state=80,
                                rng=np.random.default_rng(20230430),
                                include_raw=True)
    rtrain, rval, rtest = raw_data.split(np.random.default_rng(20230431),
                                         0.5, 0.1)
    baseline = make_design("baseline", FAST_CONFIG).fit(rtrain, rval)
    payload["baseline/full"] = baseline.predict_bits(rtest)

    np.savez_compressed(OUT, **payload)
    print(f"wrote {OUT} ({len(payload)} arrays)")


if __name__ == "__main__":
    main()
