"""Fixed-point quantization tests."""

import numpy as np
import pytest

from repro.core import (FAST_CONFIG, HerqulesDiscriminator,
                        QuantizedHerqules, accuracy_vs_word_size,
                        quantization_error, quantize_array)


@pytest.fixture(scope="module")
def fitted(request):
    small_splits = request.getfixturevalue("small_splits")
    train, val, _ = small_splits
    return HerqulesDiscriminator(use_rmf=True, config=FAST_CONFIG).fit(train,
                                                                       val)


class TestQuantizeArray:
    def test_values_on_grid(self, rng):
        values = rng.normal(size=100)
        q = quantize_array(values, 8)
        step = np.abs(values).max() / (2 ** 7 - 1)
        np.testing.assert_allclose(q / step, np.round(q / step), atol=1e-9)

    def test_error_shrinks_with_bits(self, rng):
        values = rng.normal(size=1000)
        errors = [quantization_error(values, b) for b in (4, 8, 12, 16)]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-3

    def test_saturation(self):
        q = quantize_array(np.array([10.0, -10.0]), 4, max_abs=1.0)
        assert q.max() <= 1.0 + 1e-12
        assert q.min() >= -1.0 - 1.0 / 7  # one step below -max is allowed

    def test_zero_array(self):
        np.testing.assert_array_equal(quantize_array(np.zeros(4), 8),
                                      np.zeros(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_array(np.ones(3), 1)

    def test_16_bits_nearly_lossless(self, rng):
        values = rng.normal(size=500)
        assert quantization_error(values, 16) < 1e-4


class TestQuantizedHerqules:
    def test_16bit_matches_float(self, fitted, small_splits):
        _, _, test = small_splits
        float_pred = fitted.predict_bits(test)
        q16_pred = QuantizedHerqules(fitted, 16).predict_bits(test)
        agreement = (float_pred == q16_pred).mean()
        assert agreement > 0.999  # 16-bit words are effectively lossless

    def test_accuracy_degrades_gracefully(self, fitted, small_splits):
        _, _, test = small_splits
        results = accuracy_vs_word_size(fitted, test,
                                        word_sizes=(16, 8, 4))
        assert results[16] == pytest.approx(results["float"], abs=0.01)
        assert results[4] <= results[16] + 0.01

    def test_truncation_still_works(self, fitted, small_splits):
        _, _, test = small_splits
        quantized = QuantizedHerqules(fitted, 12)
        pred = quantized.predict_bits(test.truncate(500.0))
        assert pred.shape == (test.n_traces, 5)

    def test_source_design_untouched(self, fitted, small_splits):
        _, _, test = small_splits
        before = fitted.predict_bits(test)
        QuantizedHerqules(fitted, 4)  # aggressive quantization of the copy
        after = fitted.predict_bits(test)
        np.testing.assert_array_equal(before, after)

    def test_requires_fitted_design(self):
        with pytest.raises(ValueError, match="fitted"):
            QuantizedHerqules(HerqulesDiscriminator(config=FAST_CONFIG), 8)

    def test_refit_forbidden(self, fitted, small_splits):
        train, val, _ = small_splits
        quantized = QuantizedHerqules(fitted, 8)
        with pytest.raises(NotImplementedError):
            quantized.fit(train, val)
