"""Property-based tests for core algorithms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (apply_envelope, cumulative_accuracy, fit_threshold,
                        per_qubit_accuracy, train_envelope)
from repro.core.discriminators import bits_from_basis

floats = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


@given(st.integers(2, 30), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_envelope_antisymmetric_in_classes(n, seed):
    """Swapping class A and B negates the envelope (same variance, mean
    flips sign) when classes have equal size."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, 2, 6))
    b = rng.normal(size=(n, 2, 6))
    np.testing.assert_allclose(train_envelope(a, b),
                               -train_envelope(b, a), atol=1e-9)


@given(st.integers(0, 2 ** 31 - 1), st.floats(0.1, 5.0))
@settings(max_examples=25, deadline=None)
def test_envelope_output_scales_linearly(seed, scale):
    rng = np.random.default_rng(seed)
    env = rng.normal(size=(2, 8))
    traces = rng.normal(size=(4, 2, 8))
    np.testing.assert_allclose(apply_envelope(env, scale * traces),
                               scale * apply_envelope(env, traces),
                               rtol=1e-9)


@given(arrays(np.float64, st.integers(2, 60), elements=floats),
       st.integers(0, 2 ** 31 - 1))
@settings(max_examples=30, deadline=None)
def test_threshold_never_worse_than_majority(values, seed):
    """The fitted threshold's training error is at most min(p, 1-p)."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=values.size)
    th = fit_threshold(values, labels)
    error = (th.predict(values) != labels).mean()
    majority_error = min(labels.mean(), 1 - labels.mean())
    assert error <= majority_error + 1e-12


@given(st.lists(st.floats(0.01, 1.0), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_cumulative_accuracy_bounds(accs):
    accs = np.array(accs)
    cumulative = cumulative_accuracy(accs)
    assert accs.min() - 1e-12 <= cumulative <= accs.max() + 1e-12


@given(st.integers(1, 8), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=30, deadline=None)
def test_bits_from_basis_roundtrip(n_qubits, seed):
    rng = np.random.default_rng(seed)
    basis = rng.integers(0, 2 ** n_qubits, size=10)
    bits = bits_from_basis(basis, n_qubits)
    weights = 1 << np.arange(n_qubits)[::-1]
    np.testing.assert_array_equal(bits @ weights, basis)


@given(st.integers(1, 6), st.integers(2, 50), st.integers(0, 2 ** 31 - 1))
@settings(max_examples=30, deadline=None)
def test_accuracy_complement(n_qubits, n_traces, seed):
    """Accuracy of predictions + accuracy of inverted predictions = 1."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=(n_traces, n_qubits))
    pred = rng.integers(0, 2, size=(n_traces, n_qubits))
    acc = per_qubit_accuracy(pred, labels)
    inv = per_qubit_accuracy(1 - pred, labels)
    np.testing.assert_allclose(acc + inv, 1.0)
