"""Bit-exact regression of every design against the pre-pipeline seed.

The fixture ``tests/data/design_regression.npz`` pins the predictions of
the original (pre-stage-pipeline) implementation on a fixed-seed dataset;
these tests prove the declarative stage pipelines are drop-in identical.
Regenerate the fixture only on an intended behaviour change
(``tests/data/make_design_regression.py``).
"""

import pathlib

import numpy as np
import pytest

from repro.core import FAST_CONFIG, make_design
from repro.readout import (five_qubit_paper_device, generate_dataset,
                           single_qubit_device)

FIXTURE = pathlib.Path(__file__).parent.parent / "data" / "design_regression.npz"

TRUNCATE_NS = 500.0

DEMOD_DESIGNS = ("mf", "mf-svm", "mf-nn", "mf-rmf-svm", "mf-rmf-nn",
                 "centroid", "boxcar")


@pytest.fixture(scope="module")
def expected():
    with np.load(FIXTURE) as data:
        return {key: data[key] for key in data.files}


@pytest.fixture(scope="module")
def regression_splits():
    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=30,
                            rng=np.random.default_rng(20230428))
    return data.split(np.random.default_rng(20230429), 0.5, 0.1)


@pytest.mark.parametrize("name", DEMOD_DESIGNS)
def test_design_matches_seed_implementation(name, regression_splits,
                                            expected):
    train, val, test = regression_splits
    design = make_design(name, FAST_CONFIG).fit(train, val)
    np.testing.assert_array_equal(design.predict_bits(test),
                                  expected[f"{name}/full"])
    np.testing.assert_array_equal(
        design.predict_bits(test.truncate(TRUNCATE_NS)),
        expected[f"{name}/truncated"])


def test_baseline_matches_seed_implementation(expected):
    device = single_qubit_device()
    data = generate_dataset(device, shots_per_state=80,
                            rng=np.random.default_rng(20230430),
                            include_raw=True)
    train, val, test = data.split(np.random.default_rng(20230431), 0.5, 0.1)
    design = make_design("baseline", FAST_CONFIG).fit(train, val)
    np.testing.assert_array_equal(design.predict_bits(test),
                                  expected["baseline/full"])
