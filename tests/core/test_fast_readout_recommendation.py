"""Per-qubit fast-readout recommendation tests (paper Section 5.2)."""

import numpy as np
import pytest

from repro.core import (FAST_CONFIG, make_design,
                        per_qubit_saturation_durations,
                        recommend_ancilla_qubit)

DURATIONS = (500.0, 750.0, 1000.0)


@pytest.fixture(scope="module")
def fitted(request):
    small_splits = request.getfixturevalue("small_splits")
    train, val, _ = small_splits
    return make_design("mf", FAST_CONFIG).fit(train, val)


class TestPerQubitDurations:
    def test_shapes_and_bounds(self, fitted, small_splits):
        _, _, test = small_splits
        durations = per_qubit_saturation_durations(fitted, test, DURATIONS)
        assert durations.shape == (5,)
        for d in durations:
            assert d in DURATIONS

    def test_loose_tolerance_shortens(self, fitted, small_splits):
        _, _, test = small_splits
        tight = per_qubit_saturation_durations(fitted, test, DURATIONS,
                                               tolerance=0.001)
        loose = per_qubit_saturation_durations(fitted, test, DURATIONS,
                                               tolerance=0.2)
        assert np.all(loose <= tight)
        # A 20% accuracy slack admits the shortest duration everywhere.
        assert np.all(loose == min(DURATIONS))

    def test_empty_durations_rejected(self, fitted, small_splits):
        _, _, test = small_splits
        with pytest.raises(ValueError):
            per_qubit_saturation_durations(fitted, test, [])


class TestAncillaRecommendation:
    def test_returns_valid_qubit(self, fitted, small_splits):
        _, _, test = small_splits
        qubit = recommend_ancilla_qubit(fitted, test, DURATIONS)
        assert 0 <= qubit < 5

    def test_never_recommends_weak_qubit(self, fitted, small_splits):
        """Qubit 2's accuracy floor disqualifies it from ancilla duty even
        when ties on duration occur."""
        _, _, test = small_splits
        qubit = recommend_ancilla_qubit(fitted, test, DURATIONS,
                                        tolerance=0.5)
        assert qubit != 1

    def test_recommendation_has_short_viable_duration(self, fitted,
                                                      small_splits):
        _, _, test = small_splits
        durations = per_qubit_saturation_durations(fitted, test, DURATIONS)
        qubit = recommend_ancilla_qubit(fitted, test, DURATIONS)
        assert durations[qubit] == durations.min()
