"""Boxcar filter tests (Section 5.1.2 ablation design)."""

import numpy as np
import pytest

from repro.core import (BoxcarDiscriminator, BoxcarFilter, best_axis_weights,
                        boxcar_output, make_design)


def two_classes(rng, n=150, n_bins=20, sep=0.6, noise=0.25):
    ground = rng.normal(scale=noise, size=(n, 2, n_bins))
    excited = ground + np.array([sep, 0.4 * sep])[None, :, None] \
        + rng.normal(scale=noise, size=(n, 2, n_bins)) * 0
    excited = np.full((n, 2, n_bins), 0.0)
    excited[:, 0] = sep
    excited[:, 1] = 0.4 * sep
    excited = excited + rng.normal(scale=noise, size=(n, 2, n_bins))
    return ground, excited


class TestBoxcarOutput:
    def test_uniform_integration(self, rng):
        traces = rng.normal(size=(4, 2, 10))
        out = boxcar_output(traces, 10, np.array([1.0, 0.0]))
        np.testing.assert_allclose(out, traces[:, 0].sum(axis=1))

    def test_window_limits(self, rng):
        traces = rng.normal(size=(2, 2, 10))
        with pytest.raises(ValueError):
            boxcar_output(traces, 0)
        with pytest.raises(ValueError):
            boxcar_output(traces, 11)

    def test_axis_weights_shape(self, rng):
        with pytest.raises(ValueError):
            boxcar_output(rng.normal(size=(2, 2, 10)), 5, np.ones(3))


class TestBoxcarFilter:
    def test_separates_classes(self, rng):
        ground, excited = two_classes(rng)
        boxcar = BoxcarFilter.fit(ground, excited)
        pred_g = boxcar.predict(ground)
        pred_e = boxcar.predict(excited)
        accuracy = ((pred_g == 0).mean() + (pred_e == 1).mean()) / 2
        assert accuracy > 0.95

    def test_fixed_window_respected(self, rng):
        ground, excited = two_classes(rng)
        boxcar = BoxcarFilter.fit(ground, excited, window_bins=7)
        assert boxcar.window_bins == 7

    def test_window_shrinks_under_relaxation(self, rng):
        """With heavy late-trace relaxation in the excited class, the
        optimized window ends before the trace does."""
        ground, excited = two_classes(rng, n=300, noise=0.15)
        # Corrupt the tail of most excited traces toward ground (relaxation).
        excited[: 200, :, 8:] = ground[:200, :, 8:]
        boxcar = BoxcarFilter.fit(ground, excited)
        assert boxcar.window_bins <= 10

    def test_axis_points_along_separation(self, rng):
        ground, excited = two_classes(rng)
        axis = best_axis_weights(ground, excited, 20)
        # Separation is along (+1, +0.4) from ground toward excited; Fisher
        # direction is ground-minus-excited, so it points the other way.
        assert axis[0] < 0


class TestBoxcarDiscriminator:
    def test_on_device_data(self, small_splits):
        train, val, test = small_splits
        design = make_design("boxcar").fit(train, val)
        accuracy = (design.predict_bits(test) == test.labels).mean()
        assert accuracy > 0.8

    def test_worse_or_equal_to_matched_filter(self, small_splits):
        """The MF weights per-bin SNR; uniform boxcar integration cannot
        beat it by much (ablation justifying the MF choice)."""
        train, val, test = small_splits
        boxcar = make_design("boxcar").fit(train, val)
        mf = make_design("mf").fit(train, val)
        acc_boxcar = (boxcar.predict_bits(test) == test.labels).mean()
        acc_mf = (mf.predict_bits(test) == test.labels).mean()
        assert acc_boxcar <= acc_mf + 0.01

    def test_optimized_windows_exposed(self, small_splits):
        train, val, _ = small_splits
        design = BoxcarDiscriminator().fit(train, val)
        windows = design.optimized_windows()
        assert len(windows) == 5
        assert all(1 <= w <= train.n_bins for w in windows)

    def test_truncation_supported(self, small_splits):
        train, val, test = small_splits
        design = BoxcarDiscriminator().fit(train, val)
        pred = design.predict_bits(test.truncate(500.0))
        assert pred.shape == (test.n_traces, 5)

    def test_unfitted_raises(self, small_splits):
        with pytest.raises(RuntimeError):
            BoxcarDiscriminator().predict_bits(small_splits[2])
