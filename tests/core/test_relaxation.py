"""Algorithm 1 tests: relaxation-trace identification."""

import numpy as np
import pytest

from repro.core import get_relaxation_traces, split_excited_traces


def make_clusters(rng, n=100, n_bins=10, ground=0.0, excited=2.0, noise=0.1):
    """Synthetic I/Q traces clustered around scalar centers."""
    t0 = np.full((n, 2, n_bins), ground) + rng.normal(scale=noise,
                                                      size=(n, 2, n_bins))
    t1 = np.full((n, 2, n_bins), excited) + rng.normal(scale=noise,
                                                       size=(n, 2, n_bins))
    return t0, t1


class TestAlgorithm1:
    def test_no_relaxations_in_clean_data(self, rng):
        t0, t1 = make_clusters(rng)
        labels = get_relaxation_traces(t0, t1)
        assert labels.n_relaxations == 0

    def test_planted_relaxations_found(self, rng):
        t0, t1 = make_clusters(rng)
        # Plant 10 "relaxed" traces: excited-labeled but sitting at ground.
        t1[:10] = t0[:10] + rng.normal(scale=0.05, size=(10, 2, 10))
        labels = get_relaxation_traces(t0, t1)
        assert set(labels.relaxation_indices) == set(range(10))

    def test_radius_is_half_centroid_distance(self, rng):
        t0, t1 = make_clusters(rng, ground=0.0, excited=2.0)
        labels = get_relaxation_traces(t0, t1)
        centroid_dist = abs(labels.centroid_excited - labels.centroid_ground)
        assert labels.radius == pytest.approx(centroid_dist / 2)

    def test_capture_region_boundary(self, rng):
        """Traces clearly inside the half-distance radius are captured;
        traces near the excited centroid are not."""
        t0, t1 = make_clusters(rng, noise=0.01)
        t1[0] = 0.8   # 40% of the way: inside the ground region
        t1[1] = 1.2   # 60% of the way: outside the ground region
        labels = get_relaxation_traces(t0, t1)
        assert 0 in labels.relaxation_indices
        assert 1 not in labels.relaxation_indices

    def test_relaxation_fraction(self, rng):
        t0, t1 = make_clusters(rng, n=200)
        t1[:30] = t0[:30]
        labels = get_relaxation_traces(t0, t1)
        assert labels.relaxation_fraction(200) == pytest.approx(0.15)

    def test_fraction_requires_positive_n(self, rng):
        t0, t1 = make_clusters(rng)
        labels = get_relaxation_traces(t0, t1)
        with pytest.raises(ValueError):
            labels.relaxation_fraction(0)

    def test_input_validation(self, rng):
        t0, t1 = make_clusters(rng)
        with pytest.raises(ValueError):
            get_relaxation_traces(t0[:, :1], t1)  # wrong I/Q axis
        with pytest.raises(ValueError):
            get_relaxation_traces(t0[:0], t1)  # empty


class TestSplitExcitedTraces:
    def test_partition(self, rng):
        t0, t1 = make_clusters(rng)
        t1[:15] = t0[:15]
        labels = get_relaxation_traces(t0, t1)
        trusted, relax = split_excited_traces(t1, labels)
        assert trusted.shape[0] + relax.shape[0] == t1.shape[0]
        assert relax.shape[0] == labels.n_relaxations

    def test_relax_traces_near_ground(self, rng):
        t0, t1 = make_clusters(rng)
        t1[:15] = t0[:15]
        labels = get_relaxation_traces(t0, t1)
        _, relax = split_excited_traces(t1, labels)
        assert abs(relax.mean() - 0.0) < 0.2  # ground cluster is at 0


class TestOnPaperDevice:
    def test_fractions_match_t1(self, small_splits):
        """Algorithm 1's estimated relaxation fraction should land near the
        true relaxation probability on the simulated device (for qubits with
        good separation)."""
        train = small_splits[0]
        device = train.device
        for q in (0, 2, 3, 4):  # skip the deliberately weak qubit 2 (idx 1)
            ground = train.qubit_traces(q, 0)
            excited = train.qubit_traces(q, 1)
            labels = get_relaxation_traces(ground, excited)
            estimated = labels.relaxation_fraction(excited.shape[0])
            true_p = 1.0 - np.exp(-1.0 / device.qubits[q].t1_us)
            # mid-trace relaxations near the end are not captured; allow a
            # generous band around the physical probability.
            assert 0.3 * true_p < estimated < 1.6 * true_p
