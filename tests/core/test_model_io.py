"""Trained-model persistence tests."""

import numpy as np
import pytest

from repro.core import (FAST_CONFIG, HerqulesDiscriminator, load_herqules,
                        load_pipeline, make_design, save_herqules,
                        save_pipeline)
from repro.core.pipeline import KIND_DATASET, Pipeline, Stage


@pytest.fixture(scope="module")
def fitted_pair(request):
    small_splits = request.getfixturevalue("small_splits")
    train, val, _ = small_splits
    with_rmf = HerqulesDiscriminator(use_rmf=True,
                                     config=FAST_CONFIG).fit(train, val)
    without = HerqulesDiscriminator(use_rmf=False,
                                    config=FAST_CONFIG).fit(train, val)
    return with_rmf, without


class TestSaveLoad:
    @pytest.mark.parametrize("index", [0, 1], ids=["mf-rmf-nn", "mf-nn"])
    def test_roundtrip_predictions_identical(self, fitted_pair, small_splits,
                                             tmp_path, index):
        _, _, test = small_splits
        design = fitted_pair[index]
        path = str(tmp_path / "model.npz")
        save_herqules(design, path)
        loaded = load_herqules(path)
        np.testing.assert_array_equal(loaded.predict_bits(test),
                                      design.predict_bits(test))

    def test_truncated_predictions_identical(self, fitted_pair, small_splits,
                                             tmp_path):
        _, _, test = small_splits
        design = fitted_pair[0]
        path = str(tmp_path / "model.npz")
        save_herqules(design, path)
        loaded = load_herqules(path)
        short = test.truncate(600.0)
        np.testing.assert_array_equal(loaded.predict_bits(short),
                                      design.predict_bits(short))

    def test_metadata_restored(self, fitted_pair, tmp_path):
        design = fitted_pair[0]
        path = str(tmp_path / "model.npz")
        save_herqules(design, path)
        loaded = load_herqules(path)
        assert loaded.use_rmf == design.use_rmf
        assert loaded.name == design.name
        assert loaded.bank.n_features == design.bank.n_features
        assert loaded.network.layer_sizes() == design.network.layer_sizes()

    def test_unfitted_save_rejected(self, tmp_path):
        design = HerqulesDiscriminator(config=FAST_CONFIG)
        with pytest.raises(ValueError, match="unfitted"):
            save_herqules(design, str(tmp_path / "model.npz"))

    def test_version_check(self, fitted_pair, tmp_path):
        path = str(tmp_path / "model.npz")
        save_herqules(fitted_pair[0], path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["format_version"] = np.array(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_herqules(path)


class TestPipelineSaveLoad:
    """Generic persistence of any fitted Pipeline stage list."""

    @pytest.mark.parametrize("name", ["mf", "mf-svm", "mf-nn", "mf-rmf-svm",
                                      "mf-rmf-nn", "centroid", "boxcar"])
    def test_roundtrip_predictions_identical(self, request, tmp_path, name):
        train, val, test = request.getfixturevalue("small_splits")
        design = make_design(name, FAST_CONFIG).fit(train, val)
        path = str(tmp_path / f"{name}.npz")
        save_pipeline(design, path)              # accepts the discriminator
        loaded = load_pipeline(path)
        assert loaded.fitted
        np.testing.assert_array_equal(loaded.transform(test),
                                      design.predict_bits(test))

    @pytest.mark.parametrize("name", ["mf", "mf-rmf-nn", "centroid"])
    def test_truncated_predictions_identical(self, request, tmp_path, name):
        train, val, test = request.getfixturevalue("small_splits")
        design = make_design(name, FAST_CONFIG).fit(train, val)
        path = str(tmp_path / f"{name}.npz")
        save_pipeline(design.pipeline, path)     # accepts the bare pipeline
        short = test.truncate(600.0)
        np.testing.assert_array_equal(load_pipeline(path).transform(short),
                                      design.predict_bits(short))

    def test_baseline_roundtrip_with_raw_traces(self, request, tmp_path):
        raw = request.getfixturevalue("raw_dataset")
        train, val, test = raw.split(np.random.default_rng(5), 0.5, 0.2)
        design = make_design("baseline", FAST_CONFIG).fit(train, val)
        path = str(tmp_path / "baseline.npz")
        save_pipeline(design, path)
        np.testing.assert_array_equal(load_pipeline(path).transform(test),
                                      design.predict_bits(test))

    def test_unfitted_pipeline_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fitted"):
            save_pipeline(make_design("mf"), str(tmp_path / "x.npz"))

    def test_unregistered_stage_type_rejected(self, request, tmp_path):
        class MysteryStage(Stage):
            name = "mystery"
            input_kind = KIND_DATASET

            def transform(self, dataset, features):
                return np.zeros((dataset.n_traces, 1))

        pipeline = Pipeline([MysteryStage()])
        pipeline.fitted = True
        with pytest.raises(ValueError, match="MysteryStage"):
            save_pipeline(pipeline, str(tmp_path / "x.npz"))

    def test_version_check(self, request, tmp_path):
        train, val, _ = request.getfixturevalue("small_splits")
        design = make_design("mf").fit(train, val)
        path = str(tmp_path / "mf.npz")
        save_pipeline(design, path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["pipeline_format_version"] = np.array(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_pipeline(path)
