"""Spawn-safety regression tests: fitted models across a real process gap.

The process serving backend rebuilds engines in ``spawn`` workers from
serialized pipelines, and spawn pickles whatever crosses the boundary.
These tests pin both transports against a real spawned child:

* every ``make_design`` product (covering **every** stage type registered
  in ``repro.core.model_io``) round-trips as a ``dumps_pipeline`` blob and
  re-predicts **bit-identically** in the child;
* a fitted :class:`~repro.core.PipelineDiscriminator` also survives being
  pickled directly through ``Process`` args — the transport spawn itself
  uses for everything else (devices, datasets, specs).

A stage type added without a serializer (or with unpicklable state) must
fail here, not silently in a worker.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core import FAST_CONFIG, make_design
from repro.core.model_io import _STAGE_IO, _stage_tag, dumps_pipeline
from repro.readout import five_qubit_paper_device, generate_dataset

#: Designs fitted for the round-trip; together they must exercise every
#: registered stage serializer (asserted below, so a new stage type cannot
#: dodge spawn coverage).
DESIGNS = ("baseline", "mf", "mf-svm", "mf-nn", "mf-rmf-svm", "mf-rmf-nn",
           "centroid", "boxcar")


def _child_predict(jobs, test_blob, conn):
    """Spawn target: rebuild every design both ways and predict.

    ``jobs`` maps design name to ``(pickled fitted design, pipeline
    blob)`` — the design object arrives through the spawn pickling of
    this function's arguments; the blob is deserialized here. Returns
    ``{name: (bits_from_pickle, bits_from_blob)}`` through the pipe.
    """
    import pickle

    from repro.core.model_io import loads_pipeline

    test = pickle.loads(test_blob)
    out = {}
    for name, (design, blob) in jobs.items():
        from_pickle = design.predict_bits(test)
        from_blob = loads_pipeline(blob).transform(test)
        out[name] = (from_pickle, from_blob)
    conn.send(out)
    conn.close()


@pytest.fixture(scope="module")
def fitted():
    """Small fitted instances of every design plus their reference bits."""
    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=8,
                            rng=np.random.default_rng(41), include_raw=True)
    train, val, test = data.split(np.random.default_rng(42), 0.5, 0.2)
    designs = {name: make_design(name, FAST_CONFIG).fit(train, val)
               for name in DESIGNS}
    reference = {name: design.predict_bits(test)
                 for name, design in designs.items()}
    return designs, reference, test


class TestStageCoverage:
    def test_designs_cover_every_registered_stage_type(self, fitted):
        designs, _, _ = fitted
        covered = {_stage_tag(stage)
                   for design in designs.values()
                   for stage in design.pipeline.stages}
        assert covered == set(_STAGE_IO), (
            "spawn-safety suite no longer exercises every registered "
            "stage serializer; add a design covering the gap")


class TestSpawnRoundTrip:
    @pytest.fixture(scope="class")
    def child_bits(self, fitted):
        """One spawned child re-predicting every design both ways."""
        import pickle

        designs, _, test = fitted
        jobs = {name: (design, dumps_pipeline(design.pipeline))
                for name, design in designs.items()}
        ctx = mp.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child_predict,
                           args=(jobs, pickle.dumps(test), child_conn))
        proc.start()
        child_conn.close()
        assert parent_conn.poll(120), "spawn child produced no result"
        out = parent_conn.recv()
        proc.join(30)
        assert proc.exitcode == 0
        return out

    @pytest.mark.parametrize("name", DESIGNS)
    def test_pickled_design_repredicts_bit_identically(self, fitted,
                                                       child_bits, name):
        _, reference, _ = fitted
        from_pickle, _ = child_bits[name]
        np.testing.assert_array_equal(from_pickle, reference[name])

    @pytest.mark.parametrize("name", DESIGNS)
    def test_pipeline_blob_repredicts_bit_identically(self, fitted,
                                                      child_bits, name):
        _, reference, _ = fitted
        _, from_blob = child_bits[name]
        np.testing.assert_array_equal(from_blob, reference[name])


class TestBlobFormat:
    def test_dumps_is_a_complete_npz_archive(self, fitted):
        designs, _, _ = fitted
        blob = dumps_pipeline(designs["mf"].pipeline)
        assert blob[:2] == b"PK"      # zip container, readable from disk too

    def test_loads_round_trip_in_process(self, fitted):
        from repro.core.model_io import loads_pipeline
        designs, reference, test = fitted
        for name, design in designs.items():
            pipeline = loads_pipeline(dumps_pipeline(design.pipeline))
            np.testing.assert_array_equal(pipeline.transform(test),
                                          reference[name])
