"""Fast-readout (duration sweep) tests."""

import numpy as np
import pytest

from repro.core import (FAST_CONFIG, DurationPoint, evaluate_at_duration,
                        make_design, saturation_duration, sweep_durations)


@pytest.fixture(scope="module")
def fitted_mf(request):
    # module-scoped fit of the cheap mf design on the shared splits
    small_splits = request.getfixturevalue("small_splits")
    train, val, _ = small_splits
    return make_design("mf", FAST_CONFIG).fit(train, val)


class TestEvaluateAtDuration:
    def test_full_duration_matches_evaluate(self, fitted_mf, small_splits):
        _, _, test = small_splits
        point = evaluate_at_duration(fitted_mf, test, 1000.0)
        assert point.duration_ns == 1000.0
        result = fitted_mf.evaluate(test)
        assert point.cumulative_accuracy == pytest.approx(result.cumulative)

    def test_shorter_duration_usually_worse(self, fitted_mf, small_splits):
        _, _, test = small_splits
        long_point = evaluate_at_duration(fitted_mf, test, 1000.0)
        short_point = evaluate_at_duration(fitted_mf, test, 150.0)
        assert short_point.cumulative_accuracy \
            < long_point.cumulative_accuracy

    def test_rejects_non_truncatable(self, small_splits):
        from repro.core import BaselineFNNDiscriminator
        _, _, test = small_splits
        design = BaselineFNNDiscriminator(FAST_CONFIG)
        with pytest.raises(ValueError, match="retrain"):
            evaluate_at_duration(design, test, 500.0)


class TestSweepDurations:
    def test_without_retraining(self, small_splits):
        train, val, test = small_splits
        points = sweep_durations(lambda: make_design("mf", FAST_CONFIG),
                                 train, test, [500.0, 750.0, 1000.0], val=val)
        assert [p.duration_ns for p in points] == [500.0, 750.0, 1000.0]
        assert not any(p.retrained for p in points)

    def test_with_retraining(self, small_splits):
        train, val, test = small_splits
        points = sweep_durations(lambda: make_design("centroid", FAST_CONFIG),
                                 train, test, [500.0, 1000.0], val=val,
                                 retrain=True)
        assert all(p.retrained for p in points)
        assert all(0 < p.cumulative_accuracy <= 1 for p in points)

    def test_empty_durations_rejected(self, small_splits):
        train, val, test = small_splits
        with pytest.raises(ValueError):
            sweep_durations(lambda: make_design("mf"), train, test, [])


class TestSaturationDuration:
    def _points(self, pairs):
        return [DurationPoint(duration_ns=d, cumulative_accuracy=a,
                              per_qubit=np.array([a]), retrained=False)
                for d, a in pairs]

    def test_picks_shortest_within_tolerance(self):
        points = self._points([(500, 0.80), (750, 0.919), (1000, 0.92)])
        assert saturation_duration(points, tolerance=0.002) == 750

    def test_full_duration_when_no_saturation(self):
        points = self._points([(500, 0.5), (750, 0.7), (1000, 0.9)])
        assert saturation_duration(points, tolerance=0.002) == 1000

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            saturation_duration([])
