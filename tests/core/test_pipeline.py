"""Stage/pipeline composition contracts and design stage lists."""

import numpy as np
import pytest

from repro.core import (FAST_CONFIG, DurationScalerStage, MatchedFilterStage,
                        Pipeline, Stage, ThresholdHead, make_design)
from repro.core.pipeline import KIND_BITS, KIND_DATASET, KIND_FEATURES


class _IdentityFeatures(Stage):
    name = "identity"

    def transform(self, dataset, features):
        return features


class _WidthLiar(Stage):
    """Declares one width, returns another (contract-violation probe)."""

    name = "width-liar"

    def transform(self, dataset, features):
        return features[:, :1]

    def output_width(self, dataset, input_width):
        return input_width


class TestChainValidation:
    def test_first_stage_must_consume_dataset(self):
        with pytest.raises(ValueError, match="must consume the dataset"):
            Pipeline([_IdentityFeatures()])

    def test_dataset_stage_cannot_sit_mid_pipeline(self):
        with pytest.raises(ValueError, match="mid-pipeline"):
            Pipeline([MatchedFilterStage(), MatchedFilterStage()])

    def test_bits_stage_cannot_feed_another(self):
        with pytest.raises(ValueError, match="cannot feed"):
            Pipeline([MatchedFilterStage(), ThresholdHead(),
                      _IdentityFeatures()])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Pipeline([])

    def test_kind_declarations(self):
        assert MatchedFilterStage().input_kind == KIND_DATASET
        assert MatchedFilterStage().output_kind == KIND_FEATURES
        assert ThresholdHead().output_kind == KIND_BITS


class TestFitTransformContracts:
    def test_mf_pipeline_shapes(self, small_splits):
        train, val, test = small_splits
        pipeline = Pipeline([MatchedFilterStage(use_rmf=True),
                             DurationScalerStage()])
        pipeline.fit(train, val)
        features = pipeline.transform(test)
        assert features.shape == (test.n_traces, 2 * test.n_qubits)

    def test_transform_before_fit_raises(self, small_splits):
        pipeline = Pipeline([MatchedFilterStage()])
        with pytest.raises(RuntimeError, match="fit"):
            pipeline.transform(small_splits[2])

    def test_width_contract_enforced(self, small_splits):
        train, val, test = small_splits
        pipeline = Pipeline([MatchedFilterStage(), _WidthLiar()])
        pipeline.fit(train, val)
        with pytest.raises(ValueError, match="declared width"):
            pipeline.transform(test)

    def test_truncation_propagates_through_stages(self, small_splits):
        """A fitted MF pipeline serves shorter readouts without refitting."""
        train, val, test = small_splits
        pipeline = Pipeline([MatchedFilterStage(use_rmf=False),
                             DurationScalerStage()])
        pipeline.fit(train, val)
        full = pipeline.transform(test)
        short = pipeline.transform(test.truncate(500.0))
        assert short.shape == full.shape
        assert not np.allclose(short, full)
        assert pipeline.supports_truncation

    def test_baseline_pipeline_reports_no_truncation(self):
        design = make_design("baseline", FAST_CONFIG)
        pipeline = Pipeline(design.build_stages())
        assert not pipeline.supports_truncation

    def test_prefix_transform(self, small_splits):
        train, val, test = small_splits
        pipeline = Pipeline([MatchedFilterStage(), DurationScalerStage()])
        pipeline.fit(train, val)
        raw_features = pipeline.transform_prefix(test, 1)
        scaled = pipeline.transform(test)
        assert raw_features.shape == scaled.shape
        assert not np.allclose(raw_features, scaled)


class TestDesignStageLists:
    EXPECTED = {
        "mf": ["mf-bank", "threshold-head"],
        "mf-svm": ["mf-bank", "duration-scaler", "svm-head"],
        "mf-nn": ["mf-bank", "duration-scaler", "herqules-fnn"],
        "mf-rmf-svm": ["mf-rmf-bank", "duration-scaler", "svm-head"],
        "mf-rmf-nn": ["mf-rmf-bank", "duration-scaler", "herqules-fnn"],
        "baseline": ["raw-traces", "standard-scaler", "baseline-fnn"],
        "centroid": ["centroid-head"],
        "boxcar": ["boxcar-head"],
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_declared_stage_names(self, name):
        design = make_design(name, FAST_CONFIG)
        assert [s.name for s in design.build_stages()] == self.EXPECTED[name]

    def test_fitted_design_exposes_pipeline(self, small_splits):
        train, val, _ = small_splits
        design = make_design("mf", FAST_CONFIG)
        assert design.pipeline is None
        design.fit(train, val)
        assert design.pipeline.fitted
        assert [s.name for s in design.stages] == self.EXPECTED["mf"]


class TestFingerprints:
    def test_identically_fitted_banks_share_fingerprints(self, small_splits):
        train, val, _ = small_splits
        a = make_design("mf-svm", FAST_CONFIG).fit(train, val)
        b = make_design("mf-nn", FAST_CONFIG).fit(train, val)
        # Same training data -> byte-identical banks and scalers.
        assert (a.stages[0].fingerprint() is not None
                and a.stages[0].fingerprint() == b.stages[0].fingerprint())
        assert a.stages[1].fingerprint() == b.stages[1].fingerprint()

    def test_different_flavours_differ(self, small_splits):
        train, val, _ = small_splits
        a = make_design("mf-svm", FAST_CONFIG).fit(train, val)
        b = make_design("mf-rmf-svm", FAST_CONFIG).fit(train, val)
        assert a.stages[0].fingerprint() != b.stages[0].fingerprint()

    def test_unfitted_stage_has_no_fingerprint(self):
        assert MatchedFilterStage().fingerprint() is None


class TestQuantizedPipeline:
    def test_quantize_requires_fitted(self, small_splits):
        pipeline = Pipeline([MatchedFilterStage()])
        with pytest.raises(ValueError, match="fit"):
            pipeline.quantized(8)

    def test_quantized_shares_unquantizable_stages(self, small_splits):
        train, val, _ = small_splits
        design = make_design("mf-rmf-nn", FAST_CONFIG).fit(train, val)
        quantized = design.pipeline.quantized(8)
        # Scaler stage is shared, bank and head are fresh copies.
        assert quantized.stages[1] is design.pipeline.stages[1]
        assert quantized.stages[0] is not design.pipeline.stages[0]
        assert quantized.stages[2] is not design.pipeline.stages[2]


class TestWarmStart:
    """Recalibration warm starts: incumbent-blended refits."""

    def test_mf_envelopes_blend_toward_incumbent(self, small_splits):
        train, val, test = small_splits
        incumbent = make_design("mf").fit(train, val)
        cold = make_design("mf").fit(test, val)        # different data
        warm = make_design("mf").fit_warm(test, val,
                                          incumbent=incumbent.pipeline,
                                          blend=0.25)
        expected = (0.75 * cold.pipeline.stages[0].bank.filters[0].envelope
                    + 0.25 * incumbent.pipeline.stages[0].bank.filters[0]
                    .envelope)
        np.testing.assert_allclose(
            warm.pipeline.stages[0].bank.filters[0].envelope, expected)

    def test_blend_one_keeps_incumbent_envelopes(self, small_splits):
        train, val, test = small_splits
        incumbent = make_design("mf").fit(train, val)
        warm = make_design("mf").fit_warm(test, val,
                                          incumbent=incumbent.pipeline,
                                          blend=1.0)
        np.testing.assert_allclose(
            warm.pipeline.stages[0].bank.filters[0].envelope,
            incumbent.pipeline.stages[0].bank.filters[0].envelope)

    def test_downstream_stages_calibrate_on_blended_features(self,
                                                             small_splits):
        # The threshold head must be fitted against the *blended* bank's
        # outputs, not the cold bank's — warm starting happens inside the
        # staged fit, before downstream calibration.
        train, val, test = small_splits
        incumbent = make_design("mf").fit(train, val)
        warm = make_design("mf").fit_warm(test, val,
                                          incumbent=incumbent.pipeline,
                                          blend=0.5)
        predictions = warm.predict_bits(train)
        accuracy = float(np.mean(predictions == train.labels))
        assert accuracy > 0.8      # blended pipeline is internally coherent

    def test_centroids_blend(self, small_splits):
        train, val, test = small_splits
        incumbent = make_design("centroid").fit(train, val)
        cold = make_design("centroid").fit(test, val)
        warm = make_design("centroid").fit_warm(test, val,
                                                incumbent=incumbent.pipeline,
                                                blend=0.5)
        bins = incumbent.pipeline.stages[0].train_bins
        expected = 0.5 * (cold.pipeline.stages[0].centroids_by_bins[bins]
                          + incumbent.pipeline.stages[0]
                          .centroids_by_bins[bins])
        np.testing.assert_allclose(
            warm.pipeline.stages[0].centroids_by_bins[bins], expected)

    def test_incompatible_incumbent_degrades_to_cold_fit(self, small_splits):
        train, val, test = small_splits
        # RMF incumbent offered to a non-RMF refit: silently ignored.
        incumbent = make_design("mf-rmf-svm", FAST_CONFIG).fit(train, val)
        cold = make_design("mf").fit(test, val)
        warm = make_design("mf").fit_warm(test, val,
                                          incumbent=incumbent.pipeline,
                                          blend=0.9)
        np.testing.assert_allclose(
            warm.pipeline.stages[0].bank.filters[0].envelope,
            cold.pipeline.stages[0].bank.filters[0].envelope)

    def test_zero_blend_equals_cold_fit(self, small_splits):
        train, val, test = small_splits
        incumbent = make_design("mf").fit(train, val)
        cold = make_design("mf").fit(test, val)
        warm = make_design("mf").fit_warm(test, val,
                                          incumbent=incumbent.pipeline,
                                          blend=0.0)
        np.testing.assert_array_equal(warm.predict_bits(val),
                                      cold.predict_bits(val))

    def test_blend_validation(self, small_splits):
        train, val, _ = small_splits
        with pytest.raises(ValueError, match="blend"):
            make_design("mf").fit_warm(train, val, blend=1.5)
