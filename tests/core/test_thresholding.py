"""Optimal 1-D threshold tests."""

import numpy as np
import pytest

from repro.core import Threshold, fit_threshold


class TestFitThreshold:
    def test_perfectly_separable(self):
        values = np.array([0.0, 1.0, 2.0, 10.0, 11.0, 12.0])
        labels = np.array([0, 0, 0, 1, 1, 1])
        th = fit_threshold(values, labels)
        np.testing.assert_array_equal(th.predict(values), labels)

    def test_inverted_polarity(self):
        values = np.array([10.0, 11.0, 12.0, 0.0, 1.0, 2.0])
        labels = np.array([0, 0, 0, 1, 1, 1])
        th = fit_threshold(values, labels)
        assert th.polarity == -1
        np.testing.assert_array_equal(th.predict(values), labels)

    def test_minimizes_training_error(self, rng):
        values = np.concatenate([rng.normal(0, 1, 200),
                                 rng.normal(3, 1, 200)])
        labels = np.concatenate([np.zeros(200, dtype=int),
                                 np.ones(200, dtype=int)])
        th = fit_threshold(values, labels)
        error = (th.predict(values) != labels).mean()
        # Brute-force check: no midpoint does better.
        best = 1.0
        for cut in np.linspace(values.min(), values.max(), 1000):
            for pol in (1, -1):
                pred = (values > cut) if pol == 1 else (values < cut)
                best = min(best, (pred.astype(int) != labels).mean())
        assert error <= best + 1e-12

    def test_all_one_class(self):
        th = fit_threshold(np.array([1.0, 2.0, 3.0]), np.array([0, 0, 0]))
        np.testing.assert_array_equal(th.predict(np.array([0.0, 10.0])),
                                      [0, 0])

    def test_single_point(self):
        th = fit_threshold(np.array([5.0]), np.array([1]))
        assert th.predict(np.array([5.0]))[0] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_threshold(np.array([1.0]), np.array([2]))
        with pytest.raises(ValueError):
            fit_threshold(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            fit_threshold(np.zeros((2, 2)), np.zeros((2, 2)))


class TestThresholdPredict:
    def test_positive_polarity(self):
        th = Threshold(cut=1.0, polarity=1)
        np.testing.assert_array_equal(th.predict(np.array([0.0, 2.0])),
                                      [0, 1])

    def test_negative_polarity(self):
        th = Threshold(cut=1.0, polarity=-1)
        np.testing.assert_array_equal(th.predict(np.array([0.0, 2.0])),
                                      [1, 0])
