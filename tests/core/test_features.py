"""MatchedFilterBank and FeatureScaler tests."""

import numpy as np
import pytest

from repro.core import FeatureScaler, MatchedFilterBank


class TestFeatureScaler:
    def test_standardizes(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(500, 4))
        scaler = FeatureScaler.fit(x)
        z = scaler.transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_safe(self):
        x = np.ones((10, 2))
        scaler = FeatureScaler.fit(x)
        z = scaler.transform(x)
        assert np.all(np.isfinite(z))


class TestMatchedFilterBank:
    def test_mf_only_features(self, small_splits):
        train, _, test = small_splits
        bank = MatchedFilterBank.fit(train, use_rmf=False)
        assert bank.n_features == 5
        assert not bank.uses_rmf
        features = bank.features(test)
        assert features.shape == (test.n_traces, 5)

    def test_rmf_doubles_features(self, small_splits):
        train, _, test = small_splits
        bank = MatchedFilterBank.fit(train, use_rmf=True)
        assert bank.n_features == 10
        assert bank.uses_rmf
        assert bank.features(test).shape == (test.n_traces, 10)

    def test_mf_features_separate_states(self, small_splits):
        train, _, test = small_splits
        bank = MatchedFilterBank.fit(train, use_rmf=False)
        features = bank.features(test)
        for q in (0, 2, 3, 4):  # well-separated qubits
            f0 = features[test.labels[:, q] == 0, q]
            f1 = features[test.labels[:, q] == 1, q]
            gap = abs(f0.mean() - f1.mean())
            assert gap > 1.5 * (f0.std() + f1.std()) / 2

    def test_truncated_inference(self, small_splits):
        train, _, test = small_splits
        bank = MatchedFilterBank.fit(train, use_rmf=True)
        short = test.truncate(500.0)
        features = bank.features(short)
        assert features.shape == (test.n_traces, 10)
        assert np.all(np.isfinite(features))

    def test_qubit_count_mismatch_rejected(self, small_splits, raw_dataset):
        train, _, _ = small_splits
        bank = MatchedFilterBank.fit(train, use_rmf=False)
        with pytest.raises(ValueError, match="5 qubits"):
            bank.features(raw_dataset)

    def test_mac_operations(self, small_splits):
        train, _, _ = small_splits
        mf_only = MatchedFilterBank.fit(train, use_rmf=False)
        with_rmf = MatchedFilterBank.fit(train, use_rmf=True)
        # 5 qubits x 2 components x 20 bins = 200 MACs; RMF doubles it.
        assert mf_only.mac_operations() == 200
        assert with_rmf.mac_operations() == 400

    def test_constructor_validation(self, small_splits):
        train, _, _ = small_splits
        bank = MatchedFilterBank.fit(train, use_rmf=False)
        with pytest.raises(ValueError):
            MatchedFilterBank(bank.filters, bank.filters[:2])
        with pytest.raises(ValueError):
            MatchedFilterBank([])
