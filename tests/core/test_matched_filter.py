"""Matched filter tests: envelope formula, separation, truncation."""

import numpy as np
import pytest

from repro.core import MatchedFilter, apply_envelope, train_envelope


def gaussian_classes(rng, n=200, n_bins=20, sep=1.0, noise=0.5):
    """Two classes of I/Q traces separated along a time-varying profile."""
    profile = np.linspace(0.2, 1.0, n_bins)  # ring-up-like separation
    mean0 = np.zeros((2, n_bins))
    mean1 = np.stack([sep * profile, 0.5 * sep * profile])
    traces0 = mean0 + rng.normal(scale=noise, size=(n, 2, n_bins))
    traces1 = mean1 + rng.normal(scale=noise, size=(n, 2, n_bins))
    return traces0, traces1


class TestTrainEnvelope:
    def test_formula_mean_over_var(self, rng):
        t0, t1 = gaussian_classes(rng)
        n = min(len(t0), len(t1))
        diff = t0[:n] - t1[:n]
        expected = diff.mean(axis=0) / diff.var(axis=0)
        np.testing.assert_allclose(train_envelope(t0, t1), expected)

    def test_shape(self, rng):
        t0, t1 = gaussian_classes(rng, n_bins=13)
        assert train_envelope(t0, t1).shape == (2, 13)

    def test_unequal_class_sizes_allowed(self, rng):
        t0, t1 = gaussian_classes(rng)
        env = train_envelope(t0[:50], t1)
        assert env.shape == (2, 20)

    def test_rejects_single_trace(self, rng):
        t0, t1 = gaussian_classes(rng)
        with pytest.raises(ValueError, match="at least two"):
            train_envelope(t0[:1], t1)

    def test_rejects_bin_mismatch(self, rng):
        t0, _ = gaussian_classes(rng, n_bins=20)
        _, t1 = gaussian_classes(rng, n_bins=10)
        with pytest.raises(ValueError):
            train_envelope(t0, t1)

    def test_zero_variance_does_not_blow_up(self):
        t0 = np.ones((5, 2, 4))
        t1 = np.zeros((5, 2, 4))
        env = train_envelope(t0, t1)
        assert np.all(np.isfinite(env))


class TestApplyEnvelope:
    def test_output_is_dot_product(self, rng):
        env = rng.normal(size=(2, 10))
        traces = rng.normal(size=(7, 2, 10))
        out = apply_envelope(env, traces)
        expected = (env[None] * traces).sum(axis=(1, 2))
        np.testing.assert_allclose(out, expected)

    def test_truncated_traces_use_envelope_prefix(self, rng):
        env = rng.normal(size=(2, 10))
        traces = rng.normal(size=(3, 2, 6))
        out = apply_envelope(env, traces)
        expected = (env[None, :, :6] * traces).sum(axis=(1, 2))
        np.testing.assert_allclose(out, expected)

    def test_rejects_longer_traces(self, rng):
        with pytest.raises(ValueError, match="trained on only"):
            apply_envelope(np.zeros((2, 5)), np.zeros((1, 2, 6)))


class TestMatchedFilter:
    def test_separates_classes(self, rng):
        t0, t1 = gaussian_classes(rng, sep=2.0)
        mf = MatchedFilter.fit(t0, t1)
        out0 = mf.apply(t0)
        out1 = mf.apply(t1)
        # The two output distributions should barely overlap.
        gap = abs(out0.mean() - out1.mean())
        assert gap > 3 * (out0.std() + out1.std()) / 2

    def test_beats_uniform_weighting(self, rng):
        """MF weighting should separate at least as well as a flat filter
        when the per-bin SNR varies (the whole point of matched filtering)."""
        t0, t1 = gaussian_classes(rng, n=500, sep=0.8)
        mf = MatchedFilter.fit(t0[:250], t1[:250])
        flat = MatchedFilter(np.sign(mf.envelope) * np.mean(np.abs(mf.envelope)))

        def snr(filt):
            o0, o1 = filt.apply(t0[250:]), filt.apply(t1[250:])
            return abs(o0.mean() - o1.mean()) / (o0.std() + o1.std())

        assert snr(mf) >= 0.95 * snr(flat)

    def test_mac_operations(self):
        mf = MatchedFilter(np.zeros((2, 20)))
        assert mf.mac_operations() == 40
        assert mf.mac_operations(n_bins=10) == 20

    def test_fit_relaxation_uses_same_formula(self, rng):
        relax, ground = gaussian_classes(rng)
        rmf = MatchedFilter.fit_relaxation(relax, ground)
        np.testing.assert_allclose(rmf.envelope,
                                   train_envelope(relax, ground))

    def test_rejects_bad_envelope(self):
        with pytest.raises(ValueError):
            MatchedFilter(np.zeros((3, 20)))
