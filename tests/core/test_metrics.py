"""Readout metric tests: accuracies, cross-fidelity, PR, improvement."""

import numpy as np
import pytest

from repro.core import (cross_fidelity_matrix, cumulative_accuracy,
                        mean_abs_cross_fidelity_by_distance,
                        misclassification_counts, per_qubit_accuracy,
                        per_state_accuracy, precision_recall,
                        relative_improvement)


class TestAccuracies:
    def test_per_qubit(self):
        labels = np.array([[0, 1], [1, 0], [1, 1]])
        pred = np.array([[0, 1], [1, 1], [0, 1]])
        np.testing.assert_allclose(per_qubit_accuracy(pred, labels),
                                   [2 / 3, 2 / 3])

    def test_cumulative_is_geometric_mean(self):
        accs = np.array([0.985, 0.754, 0.966, 0.962, 0.989])
        expected = np.prod(accs) ** (1 / 5)
        assert cumulative_accuracy(accs) == pytest.approx(expected)

    def test_paper_f5q_value(self):
        # Table 1 mf-rmf-nn row -> F5Q = 0.927.
        accs = [0.985, 0.754, 0.966, 0.962, 0.989]
        assert cumulative_accuracy(np.array(accs)) == pytest.approx(0.927,
                                                                    abs=1e-3)

    def test_per_state_accuracy(self):
        labels = np.array([[0], [0], [1], [1]])
        pred = np.array([[0], [1], [1], [0]])
        assert per_state_accuracy(pred, labels, 0, 0) == 0.5
        assert per_state_accuracy(pred, labels, 0, 1) == 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            per_qubit_accuracy(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_cumulative_empty_rejected(self):
        with pytest.raises(ValueError):
            cumulative_accuracy(np.array([]))


class TestPrecisionRecall:
    def test_perfect(self):
        labels = np.array([[0], [1], [1]])
        precision, recall = precision_recall(labels, labels)
        np.testing.assert_allclose(precision, [1.0])
        np.testing.assert_allclose(recall, [1.0])

    def test_known_values(self):
        labels = np.array([[1], [1], [0], [0]])
        pred = np.array([[1], [0], [1], [0]])
        precision, recall = precision_recall(pred, labels)
        assert precision[0] == 0.5  # 1 TP, 1 FP
        assert recall[0] == 0.5     # 1 TP, 1 FN

    def test_no_positive_predictions(self):
        labels = np.array([[1], [1]])
        pred = np.array([[0], [0]])
        precision, recall = precision_recall(pred, labels)
        assert precision[0] == 0.0
        assert recall[0] == 0.0


class TestMisclassification:
    def test_counts_by_prepared_state(self):
        labels = np.array([[0], [0], [1], [1], [1]])
        pred = np.array([[1], [0], [0], [0], [1]])
        counts = misclassification_counts(pred, labels)
        np.testing.assert_array_equal(counts, [[1, 2]])


class TestCrossFidelity:
    def test_independent_perfect_readout_is_zero(self):
        # Perfectly balanced labels (every 3-bit pattern equally often) give
        # P(e_i|0_j) = P(g_i|1_j) = 0.5 exactly, so F^CF vanishes.
        patterns = np.array([[(b >> s) & 1 for s in (2, 1, 0)]
                             for b in range(8)])
        labels = np.tile(patterns, (50, 1))
        matrix = cross_fidelity_matrix(labels, labels)
        off_diag = matrix[~np.isnan(matrix)]
        np.testing.assert_allclose(off_diag, 0.0, atol=1e-12)

    def test_diagonal_is_nan(self, rng):
        labels = rng.integers(0, 2, size=(100, 3))
        matrix = cross_fidelity_matrix(labels, labels)
        assert np.all(np.isnan(np.diag(matrix)))

    def test_correlated_errors_detected(self, rng):
        """If qubit i's prediction copies qubit j's label, |F_ij| is large."""
        n = 2000
        labels = rng.integers(0, 2, size=(n, 2))
        pred = labels.copy()
        pred[:, 0] = labels[:, 1]  # qubit 0 reads out qubit 1's state
        matrix = cross_fidelity_matrix(pred, labels)
        assert abs(matrix[0, 1]) > 0.5

    def test_by_distance_grouping(self):
        matrix = np.full((3, 3), np.nan)
        matrix[0, 1] = matrix[1, 0] = 0.1
        matrix[1, 2] = matrix[2, 1] = 0.3
        matrix[0, 2] = matrix[2, 0] = -0.5
        by_dist = mean_abs_cross_fidelity_by_distance(matrix)
        assert by_dist[1] == pytest.approx(0.2)
        assert by_dist[2] == pytest.approx(0.5)


class TestRelativeImprovement:
    def test_paper_headline_number(self):
        # (92.66 - 91.22) / (100 - 91.22) = 16.4%
        assert relative_improvement(0.9122, 0.9266) == pytest.approx(0.164,
                                                                     abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_improvement(1.0, 1.0)
