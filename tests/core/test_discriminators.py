"""Discriminator design tests on the small shared dataset."""

import numpy as np
import pytest

from repro.core import (FAST_CONFIG, BaselineFNNDiscriminator,
                        CentroidDiscriminator, DESIGN_NAMES,
                        HerqulesDiscriminator, MFSVMDiscriminator,
                        MFThresholdDiscriminator, bits_from_basis,
                        make_design)


class TestFactory:
    def test_all_names_construct(self):
        for name in DESIGN_NAMES:
            design = make_design(name, FAST_CONFIG)
            assert design.name == name

    def test_centroid_available(self):
        assert isinstance(make_design("centroid"), CentroidDiscriminator)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown design"):
            make_design("transformer")

    def test_design_classes(self):
        assert isinstance(make_design("mf"), MFThresholdDiscriminator)
        assert isinstance(make_design("mf-svm"), MFSVMDiscriminator)
        assert isinstance(make_design("baseline"), BaselineFNNDiscriminator)
        herq = make_design("mf-rmf-nn")
        assert isinstance(herq, HerqulesDiscriminator)
        assert herq.use_rmf


class TestBitsFromBasis:
    def test_msb_convention(self):
        bits = bits_from_basis(np.array([0b10110]), 5)
        np.testing.assert_array_equal(bits, [[1, 0, 1, 1, 0]])

    def test_matches_device_convention(self, five_qubit_device):
        for b in (0, 7, 21, 31):
            np.testing.assert_array_equal(
                bits_from_basis(np.array([b]), 5)[0],
                five_qubit_device.basis_state_bits(b))


@pytest.mark.parametrize("name", ["centroid", "mf", "mf-svm", "mf-nn",
                                  "mf-rmf-svm", "mf-rmf-nn"])
class TestDemodDesigns:
    def test_fit_predict_accuracy(self, name, small_splits):
        train, val, test = small_splits
        design = make_design(name, FAST_CONFIG).fit(train, val)
        pred = design.predict_bits(test)
        assert pred.shape == (test.n_traces, 5)
        assert set(np.unique(pred)) <= {0, 1}
        accuracy = (pred == test.labels).mean()
        # NN designs are data-starved at this test scale; all designs must
        # still be far above the 0.5 chance level.
        floor = 0.7 if name.endswith("nn") else 0.8
        assert accuracy > floor

    def test_supports_truncation(self, name, small_splits):
        train, val, test = small_splits
        design = make_design(name, FAST_CONFIG).fit(train, val)
        assert design.supports_truncation
        pred = design.predict_bits(test.truncate(500.0))
        assert pred.shape == (test.n_traces, 5)


class TestEvaluation:
    def test_evaluate_bundle(self, small_splits):
        train, val, test = small_splits
        design = make_design("mf", FAST_CONFIG).fit(train, val)
        result = design.evaluate(test)
        assert result.per_qubit.shape == (5,)
        assert 0 < result.cumulative <= 1
        assert result.misclassifications.shape == (5, 2)
        assert result.cross_fidelity.shape == (5, 5)
        assert 0 < result.cumulative_without(1) <= 1

    def test_predict_basis_consistent(self, small_splits):
        train, val, test = small_splits
        design = make_design("mf", FAST_CONFIG).fit(train, val)
        bits = design.predict_bits(test)
        basis = design.predict_basis(test)
        np.testing.assert_array_equal(bits_from_basis(basis, 5), bits)

    def test_unfitted_predict_raises(self, small_splits):
        _, _, test = small_splits
        for name in ("centroid", "mf", "mf-svm", "mf-nn"):
            with pytest.raises(RuntimeError):
                make_design(name, FAST_CONFIG).predict_bits(test)


class TestHerqules:
    def test_rmf_design_tracks_history(self, small_splits):
        train, val, _ = small_splits
        design = HerqulesDiscriminator(use_rmf=True, config=FAST_CONFIG)
        design.fit(train, val)
        assert design.history is not None
        assert design.history.epochs_run >= 1
        assert design.bank.uses_rmf

    def test_network_architecture_follows_paper(self, small_splits):
        train, val, _ = small_splits
        design = HerqulesDiscriminator(use_rmf=True, config=FAST_CONFIG)
        design.fit(train, val)
        # input 2N=10, hidden [2N, 4N, 2N], output 2^N=32
        assert design.network.layer_sizes() == [(10, 10), (10, 20), (20, 10),
                                                (10, 32)]

    def test_mf_nn_input_is_n(self, small_splits):
        train, val, _ = small_splits
        design = HerqulesDiscriminator(use_rmf=False, config=FAST_CONFIG)
        design.fit(train, val)
        assert design.network.layer_sizes()[0] == (5, 10)


class TestBaselineFNN:
    def test_fit_predict_single_qubit(self, raw_dataset, rng):
        train, val, test = raw_dataset.split(rng, 0.5, 0.2)
        design = BaselineFNNDiscriminator(config=FAST_CONFIG)
        design.fit(train, val)
        pred = design.predict_bits(test)
        assert (pred == test.labels).mean() > 0.7

    def test_truncation_not_supported(self, raw_dataset, rng):
        train, val, test = raw_dataset.split(rng, 0.5, 0.2)
        design = BaselineFNNDiscriminator(config=FAST_CONFIG)
        design.fit(train, val)
        assert not design.supports_truncation
        with pytest.raises(ValueError, match="retrained"):
            design.predict_bits(test.truncate(500.0))

    def test_architecture_input_tied_to_duration(self, raw_dataset, rng):
        train, val, _ = raw_dataset.split(rng, 0.5, 0.2)
        design = BaselineFNNDiscriminator(config=FAST_CONFIG)
        design.fit(train, val)
        assert design.network.layer_sizes()[0][0] == 1000
