"""Linear SVM tests."""

import numpy as np
import pytest

from repro.core import LinearSVM


def blobs(rng, n=100, sep=4.0, d=3):
    x0 = rng.normal(size=(n, d))
    x1 = rng.normal(size=(n, d)) + sep / np.sqrt(d)
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    return x, y


class TestLinearSVM:
    def test_separates_blobs(self, rng):
        x, y = blobs(rng)
        svm = LinearSVM().fit(x, y)
        assert (svm.predict(x) == y).mean() > 0.98

    def test_decision_sign_matches_predict(self, rng):
        x, y = blobs(rng)
        svm = LinearSVM().fit(x, y)
        scores = svm.decision_function(x)
        np.testing.assert_array_equal(svm.predict(x), (scores > 0).astype(int))

    def test_weights_point_to_positive_class(self, rng):
        x, y = blobs(rng)
        svm = LinearSVM().fit(x, y)
        direction = x[y == 1].mean(axis=0) - x[y == 0].mean(axis=0)
        assert svm.weights @ direction > 0

    def test_regularization_shrinks_weights(self, rng):
        x, y = blobs(rng, sep=8.0)
        loose = LinearSVM(c=10.0).fit(x, y)
        tight = LinearSVM(c=0.001).fit(x, y)
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)

    def test_deterministic(self, rng):
        x, y = blobs(rng)
        svm1 = LinearSVM().fit(x, y)
        svm2 = LinearSVM().fit(x, y)
        np.testing.assert_allclose(svm1.weights, svm2.weights)

    def test_requires_both_classes(self, rng):
        x, _ = blobs(rng)
        with pytest.raises(ValueError, match="both classes"):
            LinearSVM().fit(x, np.zeros(len(x), dtype=int))

    def test_validation(self, rng):
        x, y = blobs(rng)
        with pytest.raises(ValueError):
            LinearSVM(c=0.0)
        with pytest.raises(ValueError):
            LinearSVM().fit(x, y[:-1])
        with pytest.raises(RuntimeError):
            LinearSVM().predict(x)
