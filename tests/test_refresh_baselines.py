"""Baseline refresh guard tests (benchmarks/refresh_baselines.py).

The guard is the supported path for updating the committed ``bench_*.json``
baselines: it only keeps regenerated results that pass the
``compare_results`` gate, so a noisy run on a loaded host can never
silently ratchet the committed quality floor down.
"""

import importlib.util
import json
import pathlib
import sys

_BENCHMARKS = pathlib.Path(__file__).parent.parent / "benchmarks"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, _BENCHMARKS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


# refresh_baselines does ``import compare_results``; register it first so
# the import resolves without benchmarks/ on sys.path.
compare_results = (sys.modules.get("compare_results")
                   or _load("compare_results"))
refresh_baselines = _load("refresh_baselines")


def write(directory, name, **data):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(
        {"experiment": "bench_x", "data": data}))


def gate_args(tmp_path):
    # After ``--`` the flags are forwarded verbatim to compare_results.
    return ["--", "--results-dir", str(tmp_path / "current"),
            "--baseline-dir", str(tmp_path / "base")]


class TestRefreshBaselines:
    def test_gate_pass_keeps_fresh_results(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.setattr(refresh_baselines, "_restore_tracked_results",
                            lambda: (_ for _ in ()).throw(AssertionError(
                                "must not restore on a clean gate")))
        write(tmp_path / "current", "bench_a.json", speedup=8.0)
        write(tmp_path / "base", "bench_a.json", speedup=7.5)
        assert refresh_baselines.main(
            ["--skip-run"] + gate_args(tmp_path)) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_gate_fail_restores_committed_baselines(self, tmp_path, capsys,
                                                    monkeypatch):
        restored = []
        monkeypatch.setattr(refresh_baselines, "_restore_tracked_results",
                            lambda: restored.append(True))
        write(tmp_path / "current", "bench_a.json", speedup=2.0)
        write(tmp_path / "base", "bench_a.json", speedup=8.0)
        assert refresh_baselines.main(
            ["--skip-run"] + gate_args(tmp_path)) == 1
        assert restored == [True]
        assert "committed baselines restored" in capsys.readouterr().err

    def test_keep_on_fail_leaves_files_for_inspection(self, tmp_path,
                                                      capsys, monkeypatch):
        monkeypatch.setattr(refresh_baselines, "_restore_tracked_results",
                            lambda: (_ for _ in ()).throw(AssertionError(
                                "--keep-on-fail must not restore")))
        write(tmp_path / "current", "bench_a.json", speedup=2.0)
        write(tmp_path / "base", "bench_a.json", speedup=8.0)
        assert refresh_baselines.main(
            ["--skip-run", "--keep-on-fail"] + gate_args(tmp_path)) == 1
        assert "do not commit" in capsys.readouterr().err

    def test_failed_benchmark_run_short_circuits(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.setattr(refresh_baselines, "_run_benchmarks",
                            lambda args: 3)
        monkeypatch.setattr(
            compare_results, "main",
            lambda argv: (_ for _ in ()).throw(AssertionError(
                "gate must not run after a failed benchmark run")))
        assert refresh_baselines.main(gate_args(tmp_path)) == 3
        assert "baselines untouched" in capsys.readouterr().err

    def test_pytest_args_forwarded(self, tmp_path, monkeypatch):
        seen = []
        monkeypatch.setattr(refresh_baselines, "_run_benchmarks",
                            lambda args: seen.append(args) or 0)
        write(tmp_path / "current", "bench_a.json", speedup=8.0)
        write(tmp_path / "base", "bench_a.json", speedup=8.0)
        assert refresh_baselines.main(
            ["--pytest-args", "benchmarks/test_bench_serve.py"]
            + gate_args(tmp_path)) == 0
        assert seen == [["benchmarks/test_bench_serve.py"]]
