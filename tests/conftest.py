"""Shared fixtures: small devices and datasets sized for fast tests."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.readout import (five_qubit_paper_device, generate_dataset,
                           single_qubit_device)


@pytest.fixture(scope="session", autouse=True)
def lock_order_monitor():
    """Opt-in runtime lock-order detection (``REPRO_LOCK_ORDER=1``).

    Patches the threading lock factories for the whole session so every
    lock created by repro/test code is tracked, dumps the global
    acquisition graph as JSON at teardown (``REPRO_LOCK_ORDER_OUT``,
    default ``lock_order_report.json``), and fails the session if the
    graph contains a cycle — a lock-order inversion that could deadlock.
    """
    if os.environ.get("REPRO_LOCK_ORDER") != "1":
        yield None
        return
    from repro.analysis import runtime as lock_runtime
    monitor = lock_runtime.install()
    try:
        yield monitor
    finally:
        out = os.environ.get("REPRO_LOCK_ORDER_OUT",
                             "lock_order_report.json")
        report = lock_runtime.write_report(monitor, out)
        lock_runtime.uninstall()
    problems = lock_runtime.check_report(report)
    assert not problems, "\n".join(problems)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def five_qubit_device():
    return five_qubit_paper_device()


@pytest.fixture(scope="session")
def one_qubit_device():
    return single_qubit_device()


@pytest.fixture(scope="session")
def small_dataset(five_qubit_device):
    """A small 5-qubit dataset shared across tests (read-only)."""
    gen = np.random.default_rng(777)
    return generate_dataset(five_qubit_device, shots_per_state=30, rng=gen)


@pytest.fixture(scope="session")
def small_splits(small_dataset):
    """Train/val/test splits of the shared dataset (read-only)."""
    return small_dataset.split(np.random.default_rng(778), 0.5, 0.1)


@pytest.fixture(scope="session")
def raw_dataset(one_qubit_device):
    """A single-qubit dataset including raw ADC traces."""
    gen = np.random.default_rng(779)
    return generate_dataset(one_qubit_device, shots_per_state=60, rng=gen,
                            include_raw=True)
