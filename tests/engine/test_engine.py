"""Batched streaming inference engine tests."""

import numpy as np
import pytest

from repro.core import FAST_CONFIG, Stage, make_design
from repro.core.pipeline import KIND_DATASET
from repro.engine import LRUCache, ReadoutEngine

MF_DESIGNS = ("mf", "mf-svm", "mf-nn", "mf-rmf-svm", "mf-rmf-nn")


@pytest.fixture(scope="module")
def fitted_designs(request):
    train, val, _ = request.getfixturevalue("small_splits")
    return {name: make_design(name, FAST_CONFIG).fit(train, val)
            for name in MF_DESIGNS}


class TestPredictions:
    def test_float64_engine_is_bit_exact(self, fitted_designs, small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, chunk_size=50,
                               dtype=np.float64)
        preds = engine.predict_bits(test)
        for name, design in fitted_designs.items():
            np.testing.assert_array_equal(preds[name],
                                          design.predict_bits(test))

    def test_float32_engine_agrees_closely(self, fitted_designs,
                                           small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, chunk_size=64)
        preds = engine.predict_bits(test)
        for name, design in fitted_designs.items():
            agreement = (preds[name] == design.predict_bits(test)).mean()
            assert agreement > 0.99, name

    def test_chunk_size_invariance(self, fitted_designs, small_splits):
        _, _, test = small_splits
        a = ReadoutEngine(fitted_designs, chunk_size=7).predict_bits(test)
        b = ReadoutEngine(fitted_designs, chunk_size=1000).predict_bits(test)
        for name in fitted_designs:
            np.testing.assert_array_equal(a[name], b[name])

    def test_empty_dataset(self, fitted_designs, small_splits):
        _, _, test = small_splits
        empty = test.subset(np.arange(0))
        preds = ReadoutEngine(fitted_designs).predict_bits(empty)
        for bits in preds.values():
            assert bits.shape == (0, test.n_qubits)

    def test_matching_dtype_chunks_are_views(self, fitted_designs,
                                             small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, chunk_size=50,
                               dtype=np.float64)
        chunks = list(engine._chunk_datasets(test))
        assert all(chunk.demod.base is test.demod for chunk in chunks)

    def test_truncated_dataset(self, fitted_designs, small_splits):
        _, _, test = small_splits
        preds = ReadoutEngine(fitted_designs).predict_bits(
            test.truncate(500.0))
        for bits in preds.values():
            assert bits.shape == (test.n_traces, test.n_qubits)

    def test_evaluate_matches_design_evaluate(self, fitted_designs,
                                              small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, dtype=np.float64)
        evaluations = engine.evaluate(test)
        for name, design in fitted_designs.items():
            direct = design.evaluate(test)
            assert evaluations[name].cumulative == pytest.approx(
                direct.cumulative)
            np.testing.assert_allclose(evaluations[name].per_qubit,
                                       direct.per_qubit)


class TestSharing:
    def test_mf_features_shared_across_designs(self, fitted_designs,
                                               small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, chunk_size=10_000)
        engine.predict_bits(test)
        # Five designs, one chunk. Independently they would run 5 bank
        # passes and 4 scaler passes; shared, only 2 bank evals (one per
        # MF/RMF flavour), 2 scaler evals, and the 5 unshareable heads run:
        # 9 evals total (4 shareable), 5 cache hits.
        assert engine.stats.stage_hits == 5
        assert engine.stats.stage_evals == 9
        assert engine.stats.shareable_evals == 4
        assert engine.stats.sharing_ratio() == pytest.approx(5 / 9)

    def test_stats_accumulate_traces(self, fitted_designs, small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, chunk_size=40)
        engine.predict_bits(test)
        assert engine.stats.traces == test.n_traces
        assert engine.stats.chunks == -(-test.n_traces // 40)


class TestPredictTraces:
    def test_matches_dataset_prediction(self, fitted_designs, small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, dtype=np.float64)
        from_traces = engine.predict_traces(test.demod[:25], test.device)
        from_dataset = engine.predict_bits(test.subset(np.arange(25)))
        for name in fitted_designs:
            np.testing.assert_array_equal(from_traces[name],
                                          from_dataset[name])

    def test_single_trace_batch(self, fitted_designs, small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs)
        bits = engine.predict_traces(test.demod[:1], test.device)
        assert bits["mf"].shape == (1, test.n_qubits)

    def test_stats_as_dict(self, fitted_designs, small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs)
        engine.predict_traces(test.demod[:10], test.device)
        snapshot = engine.stats.as_dict()
        assert snapshot["traces"] == 10
        assert 0.0 <= snapshot["sharing_ratio"] <= 1.0


class TestPreallocatedOutput:
    def test_out_matches_fresh_allocation(self, fitted_designs, small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, dtype=np.float64)
        fresh = engine.predict_traces(test.demod[:20], test.device)
        out = {name: np.empty((20, test.n_qubits), dtype=np.int64)
               for name in fitted_designs}
        into = engine.predict_traces_into(test.demod[:20], test.device, out)
        for name in fitted_designs:
            np.testing.assert_array_equal(into[name], fresh[name])
            assert into[name].base is out[name]   # wrote in place, no copy

    def test_oversized_out_written_as_prefix(self, fitted_designs,
                                             small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, dtype=np.float64)
        out = {name: np.full((64, test.n_qubits), -1, dtype=np.int64)
               for name in fitted_designs}
        bits = engine.predict_traces_into(test.demod[:20], test.device, out)
        for name in fitted_designs:
            assert bits[name].shape == (20, test.n_qubits)
            np.testing.assert_array_equal(out[name][20:], -1)   # untouched


class TestStreaming:
    def test_stream_of_datasets(self, fitted_designs, small_splits):
        _, _, test = small_splits
        batches = [test.subset(np.arange(0, 30)),
                   test.subset(np.arange(30, 75))]
        outs = list(ReadoutEngine(fitted_designs).predict_stream(batches))
        assert [o["mf"].shape[0] for o in outs] == [30, 45]

    def test_stream_of_raw_arrays_needs_device(self, fitted_designs,
                                               small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs)
        with pytest.raises(ValueError, match="device"):
            list(engine.predict_stream([test.demod[:10]]))
        outs = list(engine.predict_stream([test.demod[:10]],
                                          device=test.device))
        assert outs[0]["mf-rmf-nn"].shape == (10, test.n_qubits)


class _UpcastingStage(Stage):
    """A feature stage that silently upcasts (dtype-stability probe)."""

    name = "upcaster"
    input_kind = KIND_DATASET

    def transform(self, dataset, features):
        return np.zeros((dataset.n_traces, 2), dtype=np.float64)

    def output_width(self, dataset, input_width):
        return 2


class TestDtypeStability:
    def test_float32_stays_float32_through_mf_path(self, fitted_designs,
                                                   small_splits):
        _, _, test = small_splits
        design = fitted_designs["mf-rmf-nn"]
        chunk32 = test.astype(np.float32)
        features = design.pipeline.transform_prefix(chunk32, 2)
        assert features.dtype == np.float32

    def test_engine_rejects_upcasting_stage(self, small_splits):
        from repro.core.pipeline import Pipeline

        train, val, test = small_splits
        pipeline = Pipeline([_UpcastingStage()])
        pipeline.fit(train, val)
        engine = ReadoutEngine({"probe": pipeline})
        with pytest.raises(TypeError, match="dtype stability"):
            engine.predict_bits(test)


class TestValidation:
    def test_unfitted_design_rejected(self, small_splits):
        with pytest.raises(ValueError, match="not a fitted"):
            ReadoutEngine({"mf": make_design("mf", FAST_CONFIG)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one design"):
            ReadoutEngine({})

    def test_bad_dtype_rejected(self, fitted_designs):
        with pytest.raises(ValueError, match="floating"):
            ReadoutEngine(fitted_designs, dtype=np.int32)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh a
        assert cache.put("c", 3) == "b"     # b is least recent -> evicted
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_hit_miss_counters(self):
        cache = LRUCache(maxsize=4)
        cache.put("x", 1)
        cache.get("x")
        cache.get("y")
        assert cache.hits == 1 and cache.misses == 1

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_thread_safety_under_contention(self):
        # The serve worker pool shares one cache; hammer it from several
        # threads and check the bound and counters stay coherent.
        import threading

        cache = LRUCache(maxsize=8)
        errors = []

        def worker(seed):
            try:
                for i in range(500):
                    key = (seed * 500 + i) % 24
                    if cache.get(key) is None:
                        cache.put(key, key * 2)
                    assert len(cache) <= 8
                    list(cache)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 8
        assert cache.hits + cache.misses == 8 * 500


class TestBatchHooks:
    def test_hooks_observe_every_chunk(self, fitted_designs, small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, chunk_size=32)
        seen = []
        engine.add_batch_hook(
            lambda chunk, bits: seen.append((chunk.n_traces,
                                             sorted(bits))))
        engine.predict_bits(test)
        assert sum(n for n, _ in seen) == test.n_traces
        assert len(seen) == engine.stats.chunks
        assert all(names == sorted(MF_DESIGNS) for _, names in seen)

    def test_hook_errors_counted_not_raised(self, fitted_designs,
                                            small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs, chunk_size=64)

        def explode(chunk, bits):
            raise RuntimeError("observer bug")

        engine.add_batch_hook(explode)
        bits = engine.predict_traces(test.demod[:10], test.device)
        assert bits["mf"].shape == (10, test.n_qubits)   # serving survived
        assert engine.stats.hook_errors == engine.stats.chunks
        assert engine.stats.as_dict()["hook_errors"] > 0

    def test_remove_batch_hook(self, fitted_designs, small_splits):
        _, _, test = small_splits
        engine = ReadoutEngine(fitted_designs)
        seen = []
        hook = lambda chunk, bits: seen.append(chunk.n_traces)  # noqa: E731
        engine.add_batch_hook(hook)
        engine.predict_traces(test.demod[:5], test.device)
        engine.remove_batch_hook(hook)
        engine.remove_batch_hook(hook)          # idempotent
        engine.predict_traces(test.demod[:5], test.device)
        assert seen == [5]

    def test_pipelines_accessor(self, fitted_designs):
        engine = ReadoutEngine(fitted_designs)
        pipelines = engine.pipelines
        assert sorted(pipelines) == sorted(MF_DESIGNS)
        for name, design in fitted_designs.items():
            assert pipelines[name] is design.pipeline
