"""Fitted-design LRU cache and shared-engine harness tests."""

import numpy as np
import pytest

from repro.experiments import QUICK_CONFIG, ExperimentConfig, cache_info
from repro.experiments import datasets as exp_datasets
from repro.experiments import harness as exp_harness


@pytest.fixture(autouse=True)
def _clean_caches():
    exp_datasets.clear_cache()
    exp_harness.clear_cache()
    yield
    exp_datasets.clear_cache()
    exp_harness.clear_cache()


class TestFitCache:
    def test_cache_hit_returns_same_object(self):
        a = exp_harness.fit_design("mf", QUICK_CONFIG)
        before = cache_info()
        b = exp_harness.fit_design("mf", QUICK_CONFIG)
        assert a is b
        assert cache_info()["hits"] == before["hits"] + 1

    def test_key_distinguishes_designs(self):
        a = exp_harness.fit_design("mf", QUICK_CONFIG)
        b = exp_harness.fit_design("centroid", QUICK_CONFIG)
        assert a is not b
        assert cache_info()["size"] == 2

    def test_key_is_dataset_content_not_config_tuple(self):
        """Configs producing different data must not alias (the old
        ``_config_key`` collapsed anything beyond a few scalar fields)."""
        base = QUICK_CONFIG
        other = ExperimentConfig(
            shots_per_state=base.shots_per_state,
            train_fraction=base.train_fraction,
            val_fraction=base.val_fraction,
            seed=base.seed + 1,  # different traces
            nn=base.nn, baseline_nn=base.baseline_nn)
        a = exp_harness.fit_design("mf", base)
        b = exp_harness.fit_design("mf", other)
        assert a is not b

    def test_cache_is_bounded(self):
        assert exp_harness._FITTED.maxsize == 32

    def test_demod_design_hits_cache_across_raw_and_demod_splits(self):
        """Fitting a demod-only design, then causing the raw-inclusive
        split to be generated, must not refit the demod design."""
        a = exp_harness.fit_design("centroid", QUICK_CONFIG)
        exp_datasets.prepare_splits(QUICK_CONFIG, include_raw=True)
        exp_datasets._CACHE._data.pop(  # drop the demod-only split so the
            (QUICK_CONFIG.shots_per_state, QUICK_CONFIG.train_fraction,
             QUICK_CONFIG.val_fraction, QUICK_CONFIG.seed, False), None)
        b = exp_harness.fit_design("centroid", QUICK_CONFIG)
        assert a is b

    def test_clear_cache(self):
        exp_harness.fit_design("centroid", QUICK_CONFIG)
        exp_harness.clear_cache()
        assert cache_info()["size"] == 0


class TestSharedEngine:
    def test_engine_over_cached_fits(self):
        engine = exp_harness.shared_engine(["mf", "mf-svm", "mf-nn"],
                                           QUICK_CONFIG)
        _, _, test = exp_datasets.prepare_splits(QUICK_CONFIG)
        preds = engine.predict_bits(test)
        assert set(preds) == {"mf", "mf-svm", "mf-nn"}
        # All three share the one mf-flavour bank.
        assert engine.stats.stage_hits >= 2

    def test_engine_reuses_fitted_designs(self):
        design = exp_harness.fit_design("mf", QUICK_CONFIG)
        engine = exp_harness.shared_engine(["mf"], QUICK_CONFIG)
        _, _, test = exp_datasets.prepare_splits(QUICK_CONFIG)
        np.testing.assert_array_equal(engine.predict_bits(test)["mf"],
                                      design.predict_bits(test))
