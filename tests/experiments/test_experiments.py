"""End-to-end experiment runner tests with the quick configuration.

These verify that each paper artifact's runner produces a structurally
correct result and that the paper's *qualitative* claims hold at small
scale. Quantitative comparisons live in the benchmark harness.
"""

import numpy as np
import pytest

from repro.experiments import (QUICK_CONFIG, ExperimentConfig,
                               experiment_names, run_experiment)
from repro.experiments import datasets as exp_datasets
from repro.experiments import harness as exp_harness


@pytest.fixture(scope="module", autouse=True)
def _clean_caches():
    yield
    exp_datasets.clear_cache()
    exp_harness.clear_cache()


class TestRegistry:
    def test_all_experiments_registered(self):
        names = experiment_names()
        for expected in ("table1", "table2", "table3", "table4", "table5",
                         "fig11a", "fig11b", "fig12", "fig13", "fig14a",
                         "fig14b", "fig15", "serve_scaling"):
            assert expected in names

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("table9")


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(shots_per_state=0)
        with pytest.raises(ValueError):
            ExperimentConfig(train_fraction=0.9, val_fraction=0.2)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table1", QUICK_CONFIG)

    def test_structure(self, result):
        assert result.column("design") == ["baseline", "mf", "mf-svm",
                                           "mf-nn", "mf-rmf-svm",
                                           "mf-rmf-nn"]
        for f5q in result.column("F5Q"):
            assert 0.5 < f5q <= 1.0

    def test_rmf_designs_beat_mf_only(self, result):
        by_design = dict(zip(result.column("design"), result.column("F5Q")))
        best_rmf = max(by_design["mf-rmf-svm"], by_design["mf-rmf-nn"])
        assert best_rmf >= by_design["mf"] - 0.01

    def test_f4q_exceeds_f5q(self, result):
        # dropping the weak qubit always helps
        for f5q, f4q in zip(result.column("F5Q"), result.column("F4Q")):
            assert f4q > f5q


class TestTable3:
    def test_accuracy_degrades_gracefully(self):
        result = run_experiment("table3", QUICK_CONFIG)
        f5q = result.column("F5Q")
        assert f5q[0] >= f5q[2]  # 1000ns at least as good as 500ns


class TestFigures:
    def test_fig4ab_relaxation_bias(self):
        result = run_experiment("fig4ab", QUICK_CONFIG)
        biases = result.column("bias")
        # ground state must be easier than excited for most qubits
        assert sum(b > 0 for b in biases) >= 4

    def test_fig8_relaxation_fractions(self):
        result = run_experiment("fig8", QUICK_CONFIG)
        fractions = result.column("fraction_of_excited")
        assert all(0.0 <= f < 0.6 for f in fractions)

    def test_fig10_rmf_reduces_excited_errors(self):
        result = run_experiment("fig10", QUICK_CONFIG)
        counts = result.data["counts"]
        total_excited_mfnn = counts["mf-nn"][:, 1].sum()
        total_excited_rmf = counts["mf-rmf-nn"][:, 1].sum()
        assert total_excited_rmf <= total_excited_mfnn * 1.2

    def test_fig11b_fast_readout_scales_better(self):
        result = run_experiment("fig11b", QUICK_CONFIG)
        slow = result.column("duration_us_1000ns_readout")
        fast = result.column("duration_us_500ns_readout")
        gaps = np.array(slow) - np.array(fast)
        assert np.all(np.diff(gaps) > 0)  # advantage grows with bits

    def test_fig12_all_benchmarks_improve(self):
        result = run_experiment("fig12", QUICK_CONFIG)
        for ratio in result.column("normalized"):
            assert ratio > 1.0
        assert 1.0 < result.data["mean_normalized"] < 1.4

    def test_fig14b_values(self):
        result = run_experiment("fig14b", QUICK_CONFIG)
        values = dict(zip(result.column("platform"),
                          result.column("normalized_cycle_time")))
        assert values["Google"] == pytest.approx(0.795, abs=0.002)
        assert values["IBM"] == pytest.approx(0.836, abs=0.002)

    def test_table4_shape(self):
        result = run_experiment("table4", QUICK_CONFIG)
        luts = dict(zip(result.column("design"),
                        result.column("lut_percent")))
        assert luts["herqules (RF=4)"] < 10
        assert luts["baseline (RF=200)"] > 100


class TestFig13Small:
    def test_readout_error_raises_logical_rate(self):
        # A very small instance of fig13 (d=3, few shots) to keep tests fast.
        from repro.experiments.fig13 import run_fig13
        result = run_fig13(QUICK_CONFIG, gate_error_rates=(0.004, 0.01),
                           readout_errors=(0.0, 0.05), distance=3, shots=120)
        curves = result.data["curves"]
        # At the highest physical rate, eps=0.05 should be at least as bad
        # as eps=0 (statistical noise allows ties at small shot counts).
        assert curves[0.05][-1] >= curves[0.0][-1] - 0.02


class TestServeScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("serve_scaling", QUICK_CONFIG)

    EXPECTED_SWEEP = {f"{backend}-{n}" for backend in ("thread", "process")
                      for n in (1, 2, 4)}

    def test_sweeps_both_backends_at_requested_shard_counts(self, result):
        assert result.column("shards") == [1, 2, 4, 1, 2, 4]
        assert result.column("backend") == (["thread"] * 3
                                            + ["process"] * 3)

    def test_metrics_are_sane(self, result):
        for throughput in result.column("traces_per_s"):
            assert throughput > 0
        for p50, p99 in zip(result.column("p50_ms"),
                            result.column("p99_ms")):
            assert 0 < p50 <= p99
        for batch in result.column("mean_batch_traces"):
            assert batch >= 1.0

    def test_reports_attached(self, result):
        reports = result.data["reports"]
        assert set(reports) == self.EXPECTED_SWEEP
        for bundle in reports.values():
            assert bundle["load"]["rejected"] == 0
            assert bundle["load"]["failed"] == 0
            assert bundle["server"]["failed"] == 0
            assert bundle["server"]["worker_deaths"] == 0

    def test_scaling_summary_attached(self, result):
        scaling = result.data["scaling"]
        assert scaling["cpus"] >= 1
        for backend in ("thread", "process"):
            assert set(scaling[backend]) == {"1", "2", "4"}
            assert scaling[f"{backend}_speedup_4shards"] > 0

    def test_reports_survive_json_rendering(self, result):
        import json
        payload = json.loads(json.dumps(result.to_json_dict(),
                                        allow_nan=False))
        assert set(payload["data"]["reports"]) == self.EXPECTED_SWEEP


class TestFig15:
    def test_more_data_does_not_hurt_much(self):
        from repro.experiments.fig15 import run_fig15
        result = run_fig15(QUICK_CONFIG, sizes=[100, 300])
        f5q = result.column("F5Q")
        assert f5q[1] >= f5q[0] - 0.05


class TestDriftRecovery:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("drift_recovery", QUICK_CONFIG)

    def test_registered(self):
        assert "drift_recovery" in experiment_names()

    def test_structure(self, result):
        assert result.headers == ["window", "end_shot", "fid_no_recal",
                                  "fid_calib_loop", "alarm", "swaps"]
        summary = result.data["summary"]
        for key in ("recovered_fraction", "swap_count",
                    "recovery_latency_windows",
                    "request_failures_with_loop", "model_versions"):
            assert key in summary

    def test_arms_share_traffic_until_first_swap(self, result):
        # Identical pre-drift timelines prove the replay is deterministic.
        no_recal = result.column("fid_no_recal")
        with_loop = result.column("fid_calib_loop")
        swaps = result.column("swaps")
        first_swap = next(i for i, s in enumerate(swaps) if s > 0)
        assert no_recal[:first_swap] == with_loop[:first_swap]

    def test_loop_recovers_and_swaps_cleanly(self, result):
        summary = result.data["summary"]
        # Quick scale: the loop must still beat the degraded arm clearly
        # (the >= 70% recovery bound is asserted at default scale by
        # benchmarks/test_bench_calib.py).
        assert summary["drift_induced_loss"] > 0.05
        assert summary["with_loop_fidelity"] > summary["no_recal_fidelity"]
        assert summary["recovered_fraction"] > 0.5
        assert summary["swap_count"] >= 1
        assert summary["request_failures_with_loop"] == 0
        assert any(int(v) > 0
                   for v in summary["model_versions"].values())
