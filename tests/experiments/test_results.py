"""ExperimentResult container tests."""

import pytest

from repro.experiments import ExperimentResult


def make_result():
    return ExperimentResult(
        experiment="toy",
        title="A toy result",
        headers=["design", "accuracy"],
        rows=[["mf", 0.9], ["mf-rmf-nn", 0.95]],
        paper_reference="paper says 0.93",
        notes="synthetic",
    )


class TestExperimentResult:
    def test_row_header_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExperimentResult(experiment="bad", title="t", headers=["a"],
                             rows=[[1, 2]])

    def test_to_text_contains_everything(self):
        text = make_result().to_text()
        assert "toy" in text
        assert "mf-rmf-nn" in text
        assert "0.9500" in text
        assert "paper says 0.93" in text
        assert "synthetic" in text

    def test_column_extraction(self):
        result = make_result()
        assert result.column("accuracy") == [0.9, 0.95]
        assert result.column("design") == ["mf", "mf-rmf-nn"]

    def test_unknown_column(self):
        with pytest.raises(KeyError, match="available"):
            make_result().column("latency")

    def test_text_alignment(self):
        lines = make_result().to_text().splitlines()
        header_line = lines[1]
        first_row = lines[3]
        assert header_line.index("accuracy") == first_row.index("0.9000")
