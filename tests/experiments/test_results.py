"""ExperimentResult container tests."""

import pytest

from repro.experiments import ExperimentResult


def make_result():
    return ExperimentResult(
        experiment="toy",
        title="A toy result",
        headers=["design", "accuracy"],
        rows=[["mf", 0.9], ["mf-rmf-nn", 0.95]],
        paper_reference="paper says 0.93",
        notes="synthetic",
    )


class TestExperimentResult:
    def test_row_header_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExperimentResult(experiment="bad", title="t", headers=["a"],
                             rows=[[1, 2]])

    def test_to_text_contains_everything(self):
        text = make_result().to_text()
        assert "toy" in text
        assert "mf-rmf-nn" in text
        assert "0.9500" in text
        assert "paper says 0.93" in text
        assert "synthetic" in text

    def test_column_extraction(self):
        result = make_result()
        assert result.column("accuracy") == [0.9, 0.95]
        assert result.column("design") == ["mf", "mf-rmf-nn"]

    def test_unknown_column(self):
        with pytest.raises(KeyError, match="available"):
            make_result().column("latency")

    def test_text_alignment(self):
        lines = make_result().to_text().splitlines()
        header_line = lines[1]
        first_row = lines[3]
        assert header_line.index("accuracy") == first_row.index("0.9000")


class TestToJsonDict:
    def test_round_trips_through_json(self):
        import json
        payload = json.loads(json.dumps(make_result().to_json_dict()))
        assert payload["experiment"] == "toy"
        assert payload["headers"] == ["design", "accuracy"]
        assert payload["rows"] == [["mf", 0.9], ["mf-rmf-nn", 0.95]]
        assert payload["paper_reference"] == "paper says 0.93"

    def test_numpy_values_converted(self):
        import json

        import numpy as np
        result = ExperimentResult(
            experiment="np", title="t", headers=["a"],
            rows=[[np.float64(0.5)]],
            data={"scalar": np.int64(3), "array": np.arange(3),
                  "nested": {"values": np.array([1.5, 2.5])}})
        payload = result.to_json_dict()
        json.dumps(payload)  # must be serializable as-is
        assert payload["rows"] == [[0.5]]
        assert payload["data"] == {"scalar": 3, "array": [0, 1, 2],
                                   "nested": {"values": [1.5, 2.5]}}

    def test_non_finite_floats_become_null(self):
        import json

        import numpy as np
        result = ExperimentResult(
            experiment="nan", title="t", headers=["a", "b"],
            rows=[[float("nan"), 1.0]],
            data={"inf": float("inf"), "arr": np.array([np.nan, 2.0])})
        payload = result.to_json_dict()
        # Strict JSON: bare NaN/Infinity tokens must never be emitted.
        json.dumps(payload, allow_nan=False)
        assert payload["rows"] == [[None, 1.0]]
        assert payload["data"] == {"inf": None, "arr": [None, 2.0]}

    def test_unserializable_data_dropped(self):
        result = ExperimentResult(
            experiment="mixed", title="t", headers=["a"], rows=[[1]],
            data={"keep": 1.0, "drop": object()})
        data = result.to_json_dict()["data"]
        assert data == {"keep": 1.0}
