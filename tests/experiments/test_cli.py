"""Command-line interface tests."""

import pytest

from repro.experiments.__main__ import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig14b" in out
        assert "drift_recovery" in out

    def test_list_shows_descriptions(self, capsys):
        from repro.experiments.registry import DESCRIPTIONS, EXPERIMENTS
        # Every registered experiment ships a one-line description...
        assert sorted(DESCRIPTIONS) == sorted(EXPERIMENTS)
        # ...and the list output carries them next to the ids.
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "paper Table 1" in out
        assert "closed-loop recalibration" in out
        assert len(out.splitlines()) == len(EXPERIMENTS)

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "fig14b", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Google" in out
        assert "0.795" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        assert main(["run", "table4", "--quick",
                     "--out", str(tmp_path)]) == 0
        written = tmp_path / "table4.txt"
        assert written.exists()
        assert "herqules" in written.read_text()

    def test_run_multiple_experiments(self, capsys):
        assert main(["run", "table4", "fig14b", "--quick"]) == 0
        out = capsys.readouterr().out
        # Both run, in the order asked for.
        assert "== table4:" in out and "== fig14b:" in out
        assert out.index("== table4:") < out.index("== fig14b:")

    def test_run_deduplicates_repeated_ids(self, capsys):
        assert main(["run", "fig14b", "fig14b", "--quick"]) == 0
        assert capsys.readouterr().out.count("== fig14b:") == 1

    def test_multiple_with_unknown_fails(self, capsys):
        assert main(["run", "table4", "table99", "--quick"]) == 2
        assert "table99" in capsys.readouterr().err

    def test_all_with_unknown_still_fails(self, capsys):
        # 'all' must not mask a typo elsewhere in the id list.
        assert main(["run", "all", "table99", "--quick"]) == 2
        assert "table99" in capsys.readouterr().err

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "table99", "--quick"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
