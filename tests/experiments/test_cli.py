"""Command-line interface tests."""

import pytest

from repro.experiments.__main__ import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig14b" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "fig14b", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Google" in out
        assert "0.795" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        assert main(["run", "table4", "--quick",
                     "--out", str(tmp_path)]) == 0
        written = tmp_path / "table4.txt"
        assert written.exists()
        assert "herqules" in written.read_text()

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "table99", "--quick"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
