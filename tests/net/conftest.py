"""Shared fixtures for the network front-end tests.

The protocol/service/client mechanics are tested over stub engines (no
fitting, deterministic bits) so the suite runs fast; only the parity
suite fits real engines.
"""

from __future__ import annotations

import socket
import threading
import types

import numpy as np
import pytest

from repro.net import ReadoutService
from repro.readout.sharding import plan_feedlines
from repro.serve import ReadoutServer, ServeShard, ServerConfig


class EchoEngine:
    """Deterministic stub: bit = sign of each qubit's first I bin."""

    design_names = ["mf"]

    def predict_traces(self, demod, device):
        return {"mf": (demod[:, :, 0, 0] > 0).astype(np.int64)}


class GateEngine(EchoEngine):
    """Stub whose predictions block until the test opens the gate."""

    def __init__(self):
        self.gate = threading.Event()

    def predict_traces(self, demod, device):
        self.gate.wait(30.0)
        return super().predict_traces(demod, device)


def stub_server(engine=None, **knobs) -> ReadoutServer:
    """A one-shard server over a stub engine (5 qubits, 40 bins)."""
    knobs.setdefault("max_wait_ms", 0.5)
    device = types.SimpleNamespace(n_qubits=5, n_bins=40)
    shard = ServeShard(feedline=plan_feedlines(5, 1)[0],
                       engine=engine if engine is not None else EchoEngine(),
                       device=device)
    return ReadoutServer([shard], ServerConfig(**knobs))


def stub_traces(n: int = 8, seed: int = 0) -> np.ndarray:
    """A deterministic ``(n, 5, 2, 40)`` float64 trace stack."""
    return np.random.default_rng(seed).normal(size=(n, 5, 2, 40))


@pytest.fixture
def echo_service():
    """A started service over an echo-engine server."""
    server = stub_server()
    with server:
        with ReadoutService(server) as service:
            yield service


@pytest.fixture
def gated_service():
    """A started service whose engine blocks until ``gate`` opens."""
    engine = GateEngine()
    server = stub_server(engine=engine)
    with server:
        with ReadoutService(server, max_inflight_per_conn=2) as service:
            yield service, engine
        engine.gate.set()       # never leave a worker parked on teardown


def raw_connection(service: ReadoutService) -> socket.socket:
    """A plain TCP connection to a service (for hand-crafted frames)."""
    sock = socket.create_connection(service.address, timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock
