"""ReadoutService behavior: ops, caps, robustness, accounting.

Everything here runs over stub engines on a loopback listener. The
robustness suite speaks raw bytes at the service on purpose — a client
would refuse to produce these streams.
"""

import socket
import struct
import time

import numpy as np
import pytest

from repro.net import ReadoutClient, ReadoutService, protocol
from repro.net.protocol import (HEADER, MAGIC, PROTOCOL_VERSION,
                                ProtocolError)
from repro.serve import ServerClosedError, ServerOverloadedError

from conftest import (EchoEngine, GateEngine, raw_connection, stub_server,
                      stub_traces)


def expected_bits(traces):
    """What EchoEngine answers for a ``(m, 5, 2, 40)`` stack."""
    return (np.asarray(traces)[:, :, 0, 0] > 0).astype(np.int64)


class TestPredictOps:
    def test_single_trace_predict(self, echo_service):
        trace = stub_traces(1)[0]
        host, port = echo_service.address
        with ReadoutClient(host, port) as client:
            response = client.predict(trace)
        np.testing.assert_array_equal(response.bits_for("mf"),
                                      expected_bits(trace[None])[0])
        assert response.batch_traces >= 1
        assert response.latency_s > 0.0

    def test_multi_trace_predict(self, echo_service):
        traces = stub_traces(12)
        host, port = echo_service.address
        with ReadoutClient(host, port) as client:
            response = client.predict_many(traces)
        np.testing.assert_array_equal(response.bits_for("mf"),
                                      expected_bits(traces))

    def test_many_requests_one_connection(self, echo_service):
        traces = stub_traces(30)
        host, port = echo_service.address
        with ReadoutClient(host, port) as client:
            for i in range(30):
                response = client.predict(traces[i])
                np.testing.assert_array_equal(
                    response.bits_for("mf"), expected_bits(traces)[i])

    def test_bad_geometry_maps_to_value_error(self, echo_service):
        host, port = echo_service.address
        with ReadoutClient(host, port) as client:
            with pytest.raises(ValueError, match="qubits"):
                # 3 qubits against a 5-qubit server: framing is fine,
                # the server's own validation rejects it.
                client.predict(stub_traces(1)[0][:3])


class TestControlOps:
    def test_info_reports_geometry_and_version(self, echo_service):
        host, port = echo_service.address
        with ReadoutClient(host, port) as client:
            info = client.info()
        assert info["protocol_version"] == PROTOCOL_VERSION
        assert info["design_names"] == ["mf"]
        assert info["n_qubits"] == 5
        assert info["n_bins"] == 40
        assert info["backend"] == "thread"

    def test_healthcheck_round_trips_report(self, echo_service):
        host, port = echo_service.address
        with ReadoutClient(host, port) as client:
            report = client.healthcheck(budget_s=10.0)
        assert report["healthy"] is True
        assert len(report["shards"]) == 1

    def test_drain_op_flips_service_draining(self):
        server = stub_server()
        with server, ReadoutService(server) as service:
            host, port = service.address
            with ReadoutClient(host, port) as client:
                client.predict(stub_traces(1)[0])
                ack = client.drain()
                assert ack["draining"] is True
                assert service.draining
                with pytest.raises(ServerClosedError):
                    client.predict(stub_traces(1)[0])

    def test_unknown_op_answers_bad_request(self, echo_service):
        sock = raw_connection(echo_service)
        try:
            sock.sendall(protocol.encode_frame(0x42, 9))
            frame = protocol.read_frame(sock)
            assert frame.op == protocol.OP_ERROR
            assert frame.status == protocol.E_BAD_REQUEST
            assert frame.request_id == 9
            # The connection survives an unknown op: framing was intact.
            sock.sendall(protocol.encode_frame(protocol.OP_INFO, 10))
            assert protocol.read_frame(sock).op == protocol.OP_INFO_REPLY
        finally:
            sock.close()


class TestInFlightCap:
    def test_cap_rejects_then_recovers(self, gated_service):
        service, engine = gated_service
        sock = raw_connection(service)
        try:
            traces = stub_traces(1)
            for request_id in (1, 2):
                sock.sendall(protocol.encode_traces(request_id, traces))
            # Both slots parked in the engine gate; the third request on
            # this connection must bounce without touching the server.
            deadline = time.monotonic() + 5.0
            while service._total_in_flight() < 2:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            sock.sendall(protocol.encode_traces(3, traces))
            frame = protocol.read_frame(sock)
            assert frame.op == protocol.OP_ERROR
            assert frame.status == protocol.E_IN_FLIGHT_LIMIT
            assert frame.request_id == 3
            engine.gate.set()
            seen = set()
            for _ in range(2):
                reply = protocol.read_frame(sock)
                assert reply.op == protocol.OP_BITS
                seen.add(reply.request_id)
            assert seen == {1, 2}
            # Slots released: the connection is usable again.
            sock.sendall(protocol.encode_traces(4, traces))
            assert protocol.read_frame(sock).op == protocol.OP_BITS
            assert service._total_in_flight() == 0
        finally:
            sock.close()

    def test_control_ops_bypass_the_cap(self, gated_service):
        service, engine = gated_service
        sock = raw_connection(service)
        try:
            traces = stub_traces(1)
            sock.sendall(protocol.encode_traces(1, traces))
            sock.sendall(protocol.encode_traces(2, traces))
            # INFO answers while both predict slots are gated — responses
            # stream out of order, correlated by request id only.
            sock.sendall(protocol.encode_frame(protocol.OP_INFO, 3))
            frame = protocol.read_frame(sock)
            assert frame.op == protocol.OP_INFO_REPLY
            assert frame.request_id == 3
            engine.gate.set()
            assert {protocol.read_frame(sock).request_id
                    for _ in range(2)} == {1, 2}
        finally:
            sock.close()

    def test_cap_validates(self, echo_service):
        with pytest.raises(ValueError, match="max_inflight_per_conn"):
            ReadoutService(echo_service.server, max_inflight_per_conn=0)


class TestRobustness:
    """Hostile byte streams: typed error (or clean close), listener
    survives, no in-flight slot leaks."""

    def read_fatal_error(self, sock, code):
        frame = protocol.read_frame(sock)
        assert frame.op == protocol.OP_ERROR
        assert frame.status == code
        assert frame.request_id == 0       # not request-correlated
        # The service closes an untrusted stream after the error frame.
        assert protocol.read_frame(sock) is None

    def assert_service_alive(self, service):
        deadline = time.monotonic() + 5.0
        while True:
            assert time.monotonic() < deadline
            if service._total_in_flight() == 0:
                break
            time.sleep(0.005)
        host, port = service.address
        with ReadoutClient(host, port) as client:
            response = client.predict(stub_traces(1)[0])
        assert response.bits_for("mf").shape == (5,)

    def test_malformed_header(self, echo_service):
        sock = raw_connection(echo_service)
        try:
            sock.sendall(b"JUNKJUNKJUNK" + b"\x00" * 28)
            self.read_fatal_error(sock, protocol.E_BAD_FRAME)
        finally:
            sock.close()
        self.assert_service_alive(echo_service)

    def test_unknown_protocol_version(self, echo_service):
        data = bytearray(protocol.encode_frame(protocol.OP_INFO, 1))
        data[4] = PROTOCOL_VERSION + 9
        sock = raw_connection(echo_service)
        try:
            sock.sendall(bytes(data))
            self.read_fatal_error(sock, protocol.E_UNSUPPORTED_VERSION)
        finally:
            sock.close()
        self.assert_service_alive(echo_service)

    def test_oversized_frame(self, echo_service):
        header = HEADER.pack(MAGIC, PROTOCOL_VERSION, protocol.OP_PREDICT,
                             0, 1, protocol.DTYPE_FLOAT64, 0, 0,
                             1, 5, 40, 1 << 40)
        sock = raw_connection(echo_service)
        try:
            sock.sendall(header)
            self.read_fatal_error(sock, protocol.E_TOO_LARGE)
        finally:
            sock.close()
        self.assert_service_alive(echo_service)

    def test_truncated_body_then_disconnect(self, echo_service):
        data = protocol.encode_traces(1, stub_traces(2))
        sock = raw_connection(echo_service)
        sock.sendall(data[: len(data) - 64])
        sock.close()                       # mid-payload disconnect
        self.assert_service_alive(echo_service)
        snapshot = echo_service.net_stats.snapshot()
        assert snapshot["connections_closed"] >= 1

    def test_disconnect_with_requests_in_flight(self, gated_service):
        service, engine = gated_service
        sock = raw_connection(service)
        sock.sendall(protocol.encode_traces(1, stub_traces(1)))
        deadline = time.monotonic() + 5.0
        while service._total_in_flight() < 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        sock.close()                       # vanish mid-request
        engine.gate.set()
        # The resolved future finds a dead socket; the slot must still
        # release and the send failure is counted, not raised.
        deadline = time.monotonic() + 5.0
        while service._total_in_flight() > 0:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        self.assert_service_alive(service)

    def test_bad_payload_geometry_keeps_connection(self, echo_service):
        # Header declares a zero-qubit shape: decode fails, but framing
        # was intact so only the request dies, not the connection.
        frame = protocol.encode_frame(
            protocol.OP_PREDICT, 7, dtype_code=protocol.DTYPE_FLOAT64,
            shape=(1, 0, 40), payload=b"")
        sock = raw_connection(echo_service)
        try:
            sock.sendall(frame)
            reply = protocol.read_frame(sock)
            assert reply.op == protocol.OP_ERROR
            assert reply.status == protocol.E_BAD_FRAME
            assert reply.request_id == 7
            sock.sendall(protocol.encode_frame(protocol.OP_INFO, 8))
            assert protocol.read_frame(sock).op == protocol.OP_INFO_REPLY
        finally:
            sock.close()


class TestBackpressureMapping:
    def test_overload_maps_to_typed_frame(self):
        # Same recipe as the in-process reject test: single-trace batches
        # sealed instantly (max_wait_ms=0) against a 2-deep queue, and a
        # submit burst that outruns the dispatcher. Over TCP the burst is
        # one pipelined sendall; the reader's decode+submit loop races
        # the dispatch loop exactly like the tight in-process loop does.
        server = stub_server(max_batch_traces=1, max_wait_ms=0.0,
                             max_queue_requests=2)
        burst = 200
        with server, ReadoutService(server,
                                    max_inflight_per_conn=burst) as service:
            traces = stub_traces(1)
            saw_overload = False
            for attempt in range(5):
                sock = raw_connection(service)
                try:
                    sock.sendall(b"".join(
                        protocol.encode_traces(i + 1, traces)
                        for i in range(burst)))
                    sock.settimeout(10.0)
                    overloads = completions = 0
                    for _ in range(burst):
                        frame = protocol.read_frame(sock)
                        if frame.op == protocol.OP_BITS:
                            completions += 1
                        else:
                            assert frame.op == protocol.OP_ERROR
                            assert frame.status == protocol.E_OVERLOADED
                            overloads += 1
                finally:
                    sock.close()
                assert overloads + completions == burst
                assert completions > 0
                if overloads:
                    saw_overload = True
                    break
            assert saw_overload, "dispatcher never fell behind the burst"
            # After the burst the service still serves normally.
            host, port = service.address
            with ReadoutClient(host, port) as client:
                response = client.predict(traces[0])
            assert response.bits_for("mf").shape == (5,)

    def test_closed_server_maps_to_typed_frame(self):
        server = stub_server()
        with ReadoutService(server) as service:
            host, port = service.address
            with ReadoutClient(host, port) as client:
                client.predict(stub_traces(1)[0])
                server.stop()              # server dies under the service
                with pytest.raises(ServerClosedError):
                    client.predict(stub_traces(1)[0])


class TestAccountingAndMetrics:
    def test_net_collector_joins_server_registry(self, echo_service):
        host, port = echo_service.address
        with ReadoutClient(host, port) as client:
            client.predict(stub_traces(1)[0])
        exported = echo_service.metrics.export_dict()
        assert exported["net"]["requests_in"] >= 1
        assert exported["net"]["responses_out"] >= 1
        assert exported["net"]["frames_received"] >= 1
        assert exported["net"]["bytes_sent"] > 0

    def test_snapshot_reconciles(self):
        server = stub_server()
        with server, ReadoutService(server) as service:
            host, port = service.address
            with ReadoutClient(host, port) as client:
                for i in range(5):
                    client.predict(stub_traces(1)[0])
                with pytest.raises(ValueError):
                    client.predict(stub_traces(1)[0][:3])
            snapshot = service.net_stats.snapshot()
        assert snapshot["requests_in"] == 5
        assert snapshot["responses_out"] == 5
        assert snapshot["errors_out"] == 1
        assert snapshot["connections_opened"] == 1

    def test_struct_layout_is_stable(self):
        # The client/service pair depends on this exact layout; catch an
        # accidental header change before it hits the wire.
        assert struct.calcsize("<4sBBHQBBHIIIQ") == protocol.HEADER_BYTES


class TestLifecycle:
    def test_context_manager_and_idempotent_stop(self):
        server = stub_server()
        with server:
            service = ReadoutService(server)
            with service:
                host, port = service.address
                with ReadoutClient(host, port) as client:
                    client.predict(stub_traces(1)[0])
            service.stop()                 # second stop is a no-op
            with pytest.raises(RuntimeError, match="restarted"):
                service.start()

    def test_stop_server_flag_stops_the_server(self):
        server = stub_server()
        service = ReadoutService(server, stop_server=True)
        service.start()
        host, port = service.address
        with ReadoutClient(host, port) as client:
            client.predict(stub_traces(1)[0])
        service.stop()
        with pytest.raises(ServerClosedError):
            server.submit(stub_traces(1))

    def test_connections_refused_while_draining(self):
        server = stub_server()
        with server, ReadoutService(server) as service:
            host, port = service.address
            with ReadoutClient(host, port) as client:
                client.predict(stub_traces(1)[0])
        with pytest.raises((ConnectionError, OSError)):
            ReadoutClient(host, port, connect_timeout_s=1.0).info()

    def test_unstarted_service_has_no_address(self):
        service = ReadoutService(stub_server())
        with pytest.raises(RuntimeError, match="not started"):
            service.address
        service.stop()                     # stop before start is a no-op


class TestProtocolErrorHelper:
    def test_decode_traces_rejects_spoofed_shape(self):
        # Shape that multiplies to more than the payload carries.
        frame = protocol.Frame(
            version=PROTOCOL_VERSION, op=protocol.OP_PREDICT_MANY,
            status=0, request_id=1,
            dtype_code=protocol.DTYPE_FLOAT64, shape=(1000, 5, 40),
            payload=b"\x00" * 80)
        with pytest.raises(ProtocolError, match="payload"):
            protocol.decode_traces(frame)
