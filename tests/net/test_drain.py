"""Graceful drain: SIGTERM mid-load loses zero in-flight requests.

The acceptance pin for shutdown: requests the service *admitted* (the
client got no error on submission) must all complete and flush their
responses before the sockets close; requests arriving after the drain
decision get a typed ``E_DRAINING`` error, never silence.
"""

import signal
import threading
import time

import numpy as np
import pytest

from repro.net import ReadoutService, ReadoutClient, protocol
from repro.obs import install_signal_handlers
from repro.serve import ServerClosedError

from conftest import GateEngine, raw_connection, stub_server, stub_traces


class TestSigtermDrain:
    def test_in_flight_requests_complete_through_sigterm(self):
        """K requests parked in the engine when SIGTERM lands: all K
        responses arrive, bit-correct, before the socket closes."""
        engine = GateEngine()
        server = stub_server(engine=engine, max_batch_traces=1)
        service = ReadoutService(server, max_inflight_per_conn=8,
                                 stop_server=True).start()
        handle = install_signal_handlers(service, exit_on_signal=False)
        try:
            sock = raw_connection(service)
            traces = stub_traces(4)
            for request_id in range(4):
                sock.sendall(protocol.encode_traces(
                    request_id + 1, traces[request_id]))
            deadline = time.monotonic() + 5.0
            while service._total_in_flight() < 4:
                assert time.monotonic() < deadline
                time.sleep(0.005)

            opener = threading.Timer(0.2, engine.gate.set)
            opener.start()
            try:
                # SIGTERM mid-load: the handler drains the service; the
                # drain blocks until the gated requests resolve (the
                # timer above plays the role of compute finishing).
                handle._handler(signal.SIGTERM, None)
            finally:
                opener.join()

            # Every admitted request's response was flushed before the
            # close: read all 4 responses, then a clean EOF.
            sock.settimeout(5.0)
            seen = {}
            for _ in range(4):
                frame = protocol.read_frame(sock)
                assert frame.op == protocol.OP_BITS, frame
                seen[frame.request_id] = protocol.decode_bits(
                    frame, ["mf"])["mf"]
            assert protocol.read_frame(sock) is None
            assert sorted(seen) == [1, 2, 3, 4]
            for request_id, bits in seen.items():
                expected = (traces[request_id - 1][:, 0, 0] > 0)
                np.testing.assert_array_equal(
                    bits[0], expected.astype(np.int64))
            sock.close()
            assert service._total_in_flight() == 0
            snapshot = service.net_stats.snapshot()
            assert snapshot["responses_out"] == 4
            assert snapshot["send_failures"] == 0
        finally:
            engine.gate.set()
            handle.uninstall()
            service.stop()

    def test_requests_after_drain_get_typed_error(self):
        # Drain runs on a helper thread here (signal handlers can only
        # be (un)installed from the main thread, and the main thread has
        # to keep talking to the half-drained service); `stop()` is the
        # exact call the SIGTERM handler makes.
        engine = GateEngine()
        server = stub_server(engine=engine, max_batch_traces=1)
        service = ReadoutService(server, stop_server=True).start()
        stopper = None
        try:
            sock = raw_connection(service)
            sock.sendall(protocol.encode_traces(1, stub_traces(1)))
            deadline = time.monotonic() + 5.0
            while service._total_in_flight() < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)

            stopper = threading.Thread(target=service.stop, daemon=True)
            stopper.start()
            while not service.draining:
                assert time.monotonic() < deadline
                time.sleep(0.005)

            # A frame arriving mid-drain on the still-open connection is
            # answered E_DRAINING — not dropped, not hung.
            sock.sendall(protocol.encode_traces(2, stub_traces(1)))
            sock.settimeout(5.0)
            replies = {}
            engine.gate.set()
            while len(replies) < 2:
                frame = protocol.read_frame(sock)
                assert frame is not None
                replies[frame.request_id] = frame
            assert replies[1].op == protocol.OP_BITS
            assert replies[2].op == protocol.OP_ERROR
            assert replies[2].status == protocol.E_DRAINING
            sock.close()
        finally:
            engine.gate.set()
            if stopper is not None:
                stopper.join(timeout=10.0)
            service.stop()

    def test_drain_under_concurrent_client_load_loses_nothing(self):
        """Client threads hammer the service while SIGTERM lands: every
        request either returns bits or raises the typed drain error —
        outcomes reconcile exactly, nothing hangs, nothing vanishes."""
        server = stub_server()
        service = ReadoutService(server, stop_server=True).start()
        handle = install_signal_handlers(service, exit_on_signal=False)
        host, port = service.address
        outcomes = {"ok": 0, "drained": 0, "broken": 0}
        lock = threading.Lock()
        stop_firing = threading.Event()

        def client_loop():
            with ReadoutClient(host, port, timeout_s=10.0,
                               reconnect=False) as client:
                while not stop_firing.is_set():
                    try:
                        response = client.predict(stub_traces(1)[0])
                        assert response.bits_for("mf").shape == (5,)
                        key = "ok"
                    except ServerClosedError:
                        key = "drained"
                    except (ConnectionError, OSError):
                        # The listener is gone mid-connection: a typed
                        # close, still not a hang.
                        key = "broken"
                        stop_firing.set()
                    with lock:
                        outcomes[key] += 1
                    if key == "drained":
                        stop_firing.set()

        threads = [threading.Thread(target=client_loop, daemon=True)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.25)                   # real traffic in flight
        handle._handler(signal.SIGTERM, None)
        stop_firing.set()
        for thread in threads:
            thread.join(timeout=15.0)
            assert not thread.is_alive(), "client thread hung in drain"
        handle.uninstall()

        assert outcomes["ok"] > 0, outcomes
        snapshot = service.net_stats.snapshot()
        # Accounting reconciles: every admitted request produced exactly
        # one response; nothing was admitted and then lost.
        assert snapshot["requests_in"] == snapshot["responses_out"]
        assert service._total_in_flight() == 0
        # The underlying server drained too (stop_server=True).
        with pytest.raises(ServerClosedError):
            server.submit(stub_traces(1))
