"""Network parity: TCP-served bits are bit-identical to in-process bits.

The acceptance pin for the front end: the wire protocol must be a pure
transport. The same fitted shards serve the same trace batch through
``server.predict()`` and through :class:`~repro.net.ReadoutClient` over
localhost TCP, on both execution backends, and every bit matches.
"""

import numpy as np
import pytest

from repro.net import ReadoutClient, ReadoutService
from repro.core import FAST_CONFIG
from repro.serve import ServerConfig, build_sharded_server
from repro.serve.loadgen import network_closed_loop

N_PARITY_TRACES = 60


@pytest.fixture(scope="module")
def splits(request):
    return request.getfixturevalue("small_splits")


@pytest.fixture(scope="module", params=["thread", "process"])
def served_backend(request, splits):
    """A fitted 2-shard server + service per backend, started once."""
    train, val, _ = splits
    server = build_sharded_server(
        ("mf",), train, val, n_shards=2, training=FAST_CONFIG,
        config=ServerConfig(backend=request.param, max_wait_ms=0.5))
    with server:
        with ReadoutService(server) as service:
            yield request.param, server, service


class TestNetworkParity:
    def test_batch_bits_identical_over_tcp(self, served_backend, splits):
        backend, server, service = served_backend
        _, _, test = splits
        batch = test.demod[:N_PARITY_TRACES]
        inproc = server.predict(batch)
        with ReadoutClient(*service.address) as client:
            over_tcp = client.predict_many(batch)
        for name in server.design_names:
            np.testing.assert_array_equal(
                over_tcp.bits_for(name), inproc.bits_for(name),
                err_msg=f"{backend} backend: TCP bits diverge for {name}")

    def test_single_trace_bits_identical_over_tcp(self, served_backend,
                                                  splits):
        backend, server, service = served_backend
        _, _, test = splits
        trace = test.demod[3]
        inproc = server.predict(trace)
        with ReadoutClient(*service.address) as client:
            over_tcp = client.predict(trace)
        np.testing.assert_array_equal(over_tcp.bits_for("mf"),
                                      inproc.bits_for("mf"))

    def test_float32_wire_dtype_round_trips_decisions(self, served_backend,
                                                      splits):
        # The client sends whatever dtype the caller holds; a float32
        # copy must produce the float32 in-process decisions, bit-exact.
        backend, server, service = served_backend
        _, _, test = splits
        batch = test.demod[:20].astype(np.float32)
        inproc = server.predict(batch)
        with ReadoutClient(*service.address) as client:
            over_tcp = client.predict_many(batch)
        np.testing.assert_array_equal(over_tcp.bits_for("mf"),
                                      inproc.bits_for("mf"))


class TestNetworkLoadgen:
    def test_network_closed_loop_matches_workload(self, served_backend,
                                                  splits):
        backend, server, service = served_backend
        _, _, test = splits
        report = network_closed_loop(service.address, test, n_clients=2,
                                     requests_per_client=6, seed=11)
        assert report.pattern == "net-closed-loop"
        assert report.requests == 12
        assert report.completed == 12
        assert report.failed == 0 and report.rejected == 0
        assert report.traces_done == 12
        assert len(report.latencies_s) == 12
        summary = report.summary()
        assert summary["p99_ms"] >= summary["p50_ms"] > 0.0

    def test_multi_trace_requests_counted_in_traces(self, served_backend,
                                                    splits):
        backend, server, service = served_backend
        _, _, test = splits
        report = network_closed_loop(service.address, test, n_clients=2,
                                     requests_per_client=3,
                                     traces_per_request=4, seed=7)
        assert report.completed == 6
        assert report.traces_done == 24

    def test_validation(self, splits):
        _, _, test = splits
        with pytest.raises(ValueError, match="n_clients"):
            network_closed_loop(("127.0.0.1", 1), test, n_clients=0)
        with pytest.raises(ValueError, match="requests_per_client"):
            network_closed_loop(("127.0.0.1", 1), test,
                                requests_per_client=0)
