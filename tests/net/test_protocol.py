"""Wire-protocol unit tests: round trips, framing, malformed streams."""

import socket
import struct

import numpy as np
import pytest

from repro.net import protocol
from repro.net.protocol import (HEADER, HEADER_BYTES, MAGIC,
                                PROTOCOL_VERSION, FrameTooLargeError,
                                ProtocolError, UnsupportedVersionError)


def frame_from_bytes(data: bytes, **kwargs):
    """Decode one frame by pushing bytes through a real socket pair."""
    a, b = socket.socketpair()
    try:
        a.sendall(data)
        a.close()
        b.settimeout(5.0)
        return protocol.read_frame(b, **kwargs)
    finally:
        b.close()


class TestHeader:
    def test_header_is_40_bytes(self):
        assert HEADER_BYTES == 40

    def test_magic_and_version_lead_every_frame(self):
        data = protocol.encode_frame(protocol.OP_INFO, 7)
        assert data[:4] == MAGIC
        assert data[4] == PROTOCOL_VERSION


class TestTraceRoundTrip:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.float16])
    def test_stack_round_trips_bit_exact(self, dtype):
        traces = np.random.default_rng(0).normal(
            size=(3, 5, 2, 40)).astype(dtype)
        frame = frame_from_bytes(protocol.encode_traces(9, traces))
        assert frame.op == protocol.OP_PREDICT_MANY
        assert frame.request_id == 9
        back = protocol.decode_traces(frame)
        assert back.dtype == np.dtype(dtype).newbyteorder("<")
        np.testing.assert_array_equal(back, traces)

    def test_single_trace_uses_predict_op(self):
        trace = np.random.default_rng(1).normal(size=(5, 2, 40))
        frame = frame_from_bytes(protocol.encode_traces(1, trace))
        assert frame.op == protocol.OP_PREDICT
        np.testing.assert_array_equal(protocol.decode_traces(frame)[0],
                                      trace)

    def test_bad_geometry_rejected_at_encode(self):
        with pytest.raises(ValueError, match="traces must be"):
            protocol.encode_traces(1, np.zeros((5, 3, 40)))

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ProtocolError, match="no wire encoding"):
            protocol.encode_traces(1, np.zeros((5, 2, 40), dtype=np.int32))

    def test_payload_length_mismatch_rejected(self):
        frame = frame_from_bytes(protocol.encode_traces(
            1, np.zeros((2, 5, 2, 40))))
        frame.payload = frame.payload[:-8]
        with pytest.raises(ProtocolError, match="payload"):
            protocol.decode_traces(frame)


class TestBitsRoundTrip:
    def test_bits_round_trip_as_int64(self):
        bits = {"mf": np.arange(15).reshape(3, 5) % 2,
                "nn": np.ones((3, 5), dtype=np.int64)}
        frame = frame_from_bytes(protocol.encode_bits(
            4, ["mf", "nn"], bits, batch_traces=17))
        assert frame.op == protocol.OP_BITS
        assert frame.status == 17       # micro-batch size rides status
        out = protocol.decode_bits(frame, ["mf", "nn"])
        assert out["mf"].dtype == np.int64
        np.testing.assert_array_equal(out["mf"], bits["mf"])
        np.testing.assert_array_equal(out["nn"], bits["nn"])

    def test_single_trace_bits_gain_a_row_axis(self):
        frame = frame_from_bytes(protocol.encode_bits(
            1, ["mf"], {"mf": np.ones(5, dtype=np.int64)}))
        assert frame.shape == (1, 1, 5)

    def test_design_count_mismatch_rejected(self):
        frame = frame_from_bytes(protocol.encode_bits(
            1, ["mf"], {"mf": np.ones((2, 5), dtype=np.int64)}))
        with pytest.raises(ProtocolError, match="designs"):
            protocol.decode_bits(frame, ["mf", "nn"])


class TestControlFrames:
    def test_json_round_trip(self):
        obj = {"healthy": True, "shards": [1, 2]}
        frame = frame_from_bytes(protocol.encode_json(
            protocol.OP_HEALTH, 3, obj))
        assert protocol.decode_json(frame) == obj

    def test_empty_payload_decodes_to_empty_dict(self):
        frame = frame_from_bytes(protocol.encode_frame(protocol.OP_INFO, 1))
        assert protocol.decode_json(frame) == {}

    def test_error_frame_carries_code_and_message(self):
        frame = frame_from_bytes(protocol.encode_error(
            5, protocol.E_DRAINING, "later"))
        assert frame.op == protocol.OP_ERROR
        assert frame.status == protocol.E_DRAINING
        assert frame.error_name == "draining"
        assert frame.payload == b"later"


class TestMalformedStreams:
    def test_clean_eof_between_frames_is_none(self):
        assert frame_from_bytes(b"") is None

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            frame_from_bytes(b"RPRO\x01\x01")

    def test_truncated_payload_raises(self):
        data = protocol.encode_traces(1, np.zeros((2, 5, 2, 40)))
        with pytest.raises(ProtocolError, match="mid-"):
            frame_from_bytes(data[:-100])

    def test_bad_magic_raises(self):
        data = protocol.encode_frame(protocol.OP_INFO, 1)
        with pytest.raises(ProtocolError, match="magic"):
            frame_from_bytes(b"JUNK" + data[4:])

    def test_unknown_version_raises(self):
        data = bytearray(protocol.encode_frame(protocol.OP_INFO, 1))
        data[4] = PROTOCOL_VERSION + 1
        with pytest.raises(UnsupportedVersionError, match="protocol"):
            frame_from_bytes(bytes(data))

    def test_oversized_frame_raises_before_reading_payload(self):
        header = HEADER.pack(MAGIC, PROTOCOL_VERSION, protocol.OP_PREDICT,
                             0, 1, protocol.DTYPE_FLOAT64, 0, 0,
                             1, 5, 40, 1 << 40)
        with pytest.raises(FrameTooLargeError, match="bound"):
            frame_from_bytes(header)

    def test_frame_bound_is_configurable(self):
        data = protocol.encode_traces(1, np.zeros((2, 5, 2, 40)))
        with pytest.raises(FrameTooLargeError):
            frame_from_bytes(data, max_frame_bytes=64)

    def test_header_unpack_matches_encode(self):
        data = protocol.encode_frame(
            protocol.OP_BITS, 123456789, status=42,
            dtype_code=protocol.DTYPE_INT8, shape=(2, 3, 5),
            payload=b"x" * 30)
        fields = HEADER.unpack(data[:HEADER_BYTES])
        assert fields == (MAGIC, PROTOCOL_VERSION, protocol.OP_BITS, 42,
                          123456789, protocol.DTYPE_INT8, 0, 0, 2, 3, 5, 30)
        assert struct.calcsize("<4sBBHQBBHIIIQ") == HEADER_BYTES
