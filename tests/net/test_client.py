"""ReadoutClient policy: handshake, error mapping, timeout, reconnect.

The error-mapping suite runs against a scripted fake service (a raw
``socketpair``-style accept loop answering canned frames) so every
error code is exercised deterministically; the reconnect/timeout suites
run against the real service.
"""

import socket
import threading

import numpy as np
import pytest

from repro.net import (ReadoutClient, ReadoutService, RemoteError,
                       UnsupportedVersionError, protocol)
from repro.serve import ServerClosedError, ServerOverloadedError

from conftest import GateEngine, stub_server, stub_traces


class ScriptedService:
    """A listener that answers the INFO handshake, then canned replies.

    ``replies`` is a list of callables ``(frame) -> bytes``; each
    accepted request frame (after the handshake) consumes the next one.
    """

    def __init__(self, replies):
        self.replies = list(replies)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.address = self.sock.getsockname()[:2]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            try:
                while True:
                    frame = protocol.read_frame(conn)
                    if frame is None:
                        break
                    if frame.op == protocol.OP_INFO:
                        conn.sendall(protocol.encode_json(
                            protocol.OP_INFO_REPLY, frame.request_id, {
                                "protocol_version":
                                    protocol.PROTOCOL_VERSION,
                                "design_names": ["mf"],
                                "n_qubits": 5, "n_bins": 40,
                            }))
                        continue
                    if not self.replies:
                        break
                    conn.sendall(self.replies.pop(0)(frame))
            except (OSError, protocol.ProtocolError):
                pass
            finally:
                conn.close()

    def close(self):
        self.sock.close()
        self.thread.join(timeout=5.0)


def error_reply(code, message=b"scripted"):
    return lambda frame: protocol.encode_error(
        frame.request_id, code, message.decode())


@pytest.fixture
def scripted(request):
    services = []

    def make(replies):
        service = ScriptedService(replies)
        services.append(service)
        return service

    yield make
    for service in services:
        service.close()


class TestErrorMapping:
    @pytest.mark.parametrize("code,exc", [
        (protocol.E_OVERLOADED, ServerOverloadedError),
        (protocol.E_IN_FLIGHT_LIMIT, ServerOverloadedError),
        (protocol.E_DRAINING, ServerClosedError),
        (protocol.E_CLOSED, ServerClosedError),
        (protocol.E_BAD_REQUEST, ValueError),
        (protocol.E_INTERNAL, RemoteError),
    ])
    def test_error_codes_raise_typed_exceptions(self, scripted, code, exc):
        service = scripted([error_reply(code)])
        with ReadoutClient(*service.address, reconnect=False) as client:
            with pytest.raises(exc, match="scripted"):
                client.predict(stub_traces(1)[0])

    def test_version_mismatch_in_handshake(self):
        # A listener whose INFO reply claims a foreign protocol version:
        # the client must refuse the handshake, not limp along.
        class LyingService(ScriptedService):
            def _serve(self):
                while True:
                    try:
                        conn, _ = self.sock.accept()
                    except OSError:
                        return
                    try:
                        frame = protocol.read_frame(conn)
                        if frame is not None:
                            conn.sendall(protocol.encode_json(
                                protocol.OP_INFO_REPLY, frame.request_id,
                                {"protocol_version": 99}))
                    except (OSError, protocol.ProtocolError):
                        pass
                    finally:
                        conn.close()

        liar = LyingService([])
        try:
            with ReadoutClient(*liar.address) as client:
                with pytest.raises(UnsupportedVersionError, match="v99"):
                    client.info()
        finally:
            liar.close()


class TestReconnect:
    def test_broken_connection_retries_once(self):
        server = stub_server()
        with server, ReadoutService(server) as service:
            host, port = service.address
            with ReadoutClient(host, port) as client:
                first = client.predict(stub_traces(1)[0])
                # Sever the transport under the client; the next request
                # must reconnect-and-resend transparently.
                client._sock.close()
                second = client.predict(stub_traces(1)[0])
                np.testing.assert_array_equal(first.bits_for("mf"),
                                              second.bits_for("mf"))

    def test_reconnect_false_surfaces_the_break(self):
        server = stub_server()
        with server, ReadoutService(server) as service:
            host, port = service.address
            with ReadoutClient(host, port, reconnect=False) as client:
                client.predict(stub_traces(1)[0])
                client._sock.close()
                with pytest.raises(ConnectionError):
                    client.predict(stub_traces(1)[0])

    def test_dead_endpoint_raises_connection_error(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()[:2]
        probe.close()                      # nobody listens here now
        client = ReadoutClient(host, port, connect_timeout_s=0.5)
        with pytest.raises((ConnectionError, OSError)):
            client.predict(stub_traces(1)[0])


class TestTimeout:
    def test_timeout_raises_and_next_request_skips_stale_reply(self):
        engine = GateEngine()
        server = stub_server(engine=engine)
        try:
            with server, ReadoutService(server) as service:
                host, port = service.address
                with ReadoutClient(host, port, timeout_s=0.3) as client:
                    with pytest.raises(TimeoutError, match="no reply"):
                        client.predict(stub_traces(1)[0])
                    engine.gate.set()
                    # Fresh connection, fresh request id: the stale reply
                    # of the timed-out request cannot be mispaired.
                    response = client.predict(stub_traces(1)[0])
                    assert response.bits_for("mf").shape == (5,)
        finally:
            engine.gate.set()


class TestSurface:
    def test_design_names_and_info_connect_lazily(self):
        server = stub_server()
        with server, ReadoutService(server) as service:
            host, port = service.address
            client = ReadoutClient(host, port)
            try:
                assert client.design_names == ["mf"]
                assert client.info()["n_qubits"] == 5
                assert client.address == (host, port)
            finally:
                client.close()

    def test_close_is_idempotent_and_reusable(self):
        server = stub_server()
        with server, ReadoutService(server) as service:
            host, port = service.address
            client = ReadoutClient(host, port)
            client.predict(stub_traces(1)[0])
            client.close()
            client.close()
            # A closed client transparently reconnects on next use.
            assert client.predict(stub_traces(1)[0]) is not None
            client.close()

    def test_shape_validation_is_client_side(self):
        client = ReadoutClient("127.0.0.1", 1)   # never connects
        with pytest.raises(ValueError, match="predict takes one"):
            client.predict(stub_traces(2))
        with pytest.raises(ValueError, match="predict_many takes"):
            client.predict_many(stub_traces(1)[0])
