"""Layer forward/backward tests, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import Dense, Dropout, ReLU, Sigmoid, Tanh, make_activation


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar-valued f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape_and_value(self, rng):
        layer = Dense(3, 2, rng)
        x = np.array([[1.0, 2.0, 3.0]])
        out = layer.forward(x)
        expected = x @ layer.weight.value + layer.bias.value
        assert out.shape == (1, 2)
        np.testing.assert_allclose(out, expected)

    def test_rejects_wrong_input_width(self, rng):
        layer = Dense(3, 2, rng)
        with pytest.raises(ValueError, match="3 input features"):
            layer.forward(np.zeros((1, 4)))

    def test_rejects_non_batch_input(self, rng):
        layer = Dense(3, 2, rng)
        with pytest.raises(ValueError, match="batch"):
            layer.forward(np.zeros(3))

    def test_backward_requires_training_forward(self, rng):
        layer = Dense(3, 2, rng)
        layer.forward(np.zeros((1, 3)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        upstream = rng.normal(size=(5, 3))

        def loss():
            return float((layer.forward(x) * upstream).sum())

        layer.forward(x, training=True)
        layer.weight.zero_grad()
        layer.bias.zero_grad()
        layer.backward(upstream)
        num_w = numerical_gradient(loss, layer.weight.value)
        num_b = numerical_gradient(loss, layer.bias.value)
        np.testing.assert_allclose(layer.weight.grad, num_w, atol=1e-5)
        np.testing.assert_allclose(layer.bias.grad, num_b, atol=1e-5)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(2, 4))
        upstream = rng.normal(size=(2, 3))
        layer.forward(x, training=True)
        grad_x = layer.backward(upstream)

        def loss():
            return float((layer.forward(x) * upstream).sum())

        num_x = numerical_gradient(loss, x)
        np.testing.assert_allclose(grad_x, num_x, atol=1e-5)

    def test_gradients_accumulate(self, rng):
        layer = Dense(2, 2, rng)
        x = np.ones((1, 2))
        up = np.ones((1, 2))
        layer.forward(x, training=True)
        layer.backward(up)
        first = layer.weight.grad.copy()
        layer.forward(x, training=True)
        layer.backward(up)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


@pytest.mark.parametrize("activation_cls", [ReLU, Tanh, Sigmoid])
class TestActivations:
    def test_backward_matches_numerical(self, activation_cls, rng):
        layer = activation_cls()
        x = rng.normal(size=(3, 4)) + 0.1  # avoid ReLU kink at 0
        upstream = rng.normal(size=(3, 4))
        layer.forward(x, training=True)
        grad = layer.backward(upstream)

        def loss():
            return float((layer.forward(x) * upstream).sum())

        num = numerical_gradient(loss, x)
        np.testing.assert_allclose(grad, num, atol=1e-5)

    def test_forward_preserves_shape(self, activation_cls, rng):
        layer = activation_cls()
        x = rng.normal(size=(7, 3))
        assert layer.forward(x).shape == x.shape


class TestReLU:
    def test_clamps_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])


class TestSigmoid:
    def test_extreme_inputs_do_not_overflow(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)


class TestDropout:
    def test_inactive_at_inference(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 4))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_scales_kept_units(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((2000, 1))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.35 < (out > 0).mean() < 0.65

    def test_rejects_bad_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


def test_make_activation_lookup():
    assert isinstance(make_activation("relu"), ReLU)
    with pytest.raises(KeyError, match="unknown activation"):
        make_activation("gelu")
