"""Parameter container and initializer tests."""

import numpy as np
import pytest

from repro.nn import Parameter, get_initializer, glorot_uniform, he_normal


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 3)))
        np.testing.assert_allclose(p.grad, 0.0)
        assert p.shape == (2, 3)
        assert p.size == 6

    def test_zero_grad_in_place(self):
        p = Parameter(np.ones(3))
        grad_ref = p.grad
        p.grad[...] = 7.0
        p.zero_grad()
        assert grad_ref is p.grad
        np.testing.assert_allclose(p.grad, 0.0)

    def test_stored_as_float64(self):
        p = Parameter(np.array([1, 2], dtype=np.int32))
        assert p.value.dtype == np.float64


class TestInitializers:
    def test_glorot_bounds(self, rng):
        w = glorot_uniform(100, 50, rng)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.all(np.abs(w) <= limit)

    def test_he_variance(self, rng):
        w = he_normal(1000, 200, rng)
        expected_std = np.sqrt(2.0 / 1000)
        assert abs(w.std() - expected_std) / expected_std < 0.05

    def test_rejects_bad_dimensions(self, rng):
        with pytest.raises(ValueError):
            he_normal(0, 5, rng)
        with pytest.raises(ValueError):
            glorot_uniform(5, -1, rng)

    def test_lookup(self):
        assert get_initializer("he_normal") is he_normal
        with pytest.raises(KeyError, match="unknown initializer"):
            get_initializer("orthogonal")
