"""Trainer tests: learning a separable problem, early stopping, restore."""

import numpy as np
import pytest

from repro.nn import (Adam, SoftmaxCrossEntropy, Trainer, build_mlp,
                      evaluate_accuracy)


def make_blobs(rng, n_per_class=60, separation=4.0):
    """Two Gaussian blobs in 2-D."""
    x0 = rng.normal(size=(n_per_class, 2))
    x1 = rng.normal(size=(n_per_class, 2)) + separation
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n_per_class, dtype=int),
                        np.ones(n_per_class, dtype=int)])
    order = rng.permutation(len(y))
    return x[order], y[order]


def make_trainer(net, rng, **kwargs):
    defaults = dict(batch_size=16, max_epochs=60, patience=None)
    defaults.update(kwargs)
    return Trainer(network=net, loss=SoftmaxCrossEntropy(),
                   optimizer=Adam(net.parameters(), lr=0.01),
                   rng=rng, **defaults)


class TestTrainer:
    def test_learns_separable_blobs(self, rng):
        x, y = make_blobs(rng)
        net = build_mlp(2, [8], 2, rng)
        make_trainer(net, rng).fit(x, y)
        assert evaluate_accuracy(net, x, y) > 0.95

    def test_learns_xor(self, rng):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        x = np.tile(x, (30, 1)) + rng.normal(scale=0.05, size=(120, 2))
        y = np.tile(np.array([0, 1, 1, 0]), 30)
        net = build_mlp(2, [16, 16], 2, rng)
        make_trainer(net, rng, max_epochs=150).fit(x, y)
        assert evaluate_accuracy(net, x, y) > 0.9

    def test_history_records_epochs(self, rng):
        x, y = make_blobs(rng, n_per_class=20)
        net = build_mlp(2, [4], 2, rng)
        history = make_trainer(net, rng, max_epochs=5).fit(x, y)
        assert history.epochs_run == 5
        assert len(history.train_loss) == 5
        assert history.val_loss == []  # no validation set given

    def test_early_stopping_triggers(self, rng):
        x, y = make_blobs(rng)
        net = build_mlp(2, [8], 2, rng)
        trainer = make_trainer(net, rng, max_epochs=200, patience=3)
        history = trainer.fit(x, y, x, y)
        assert history.epochs_run < 200
        assert history.stopped_early

    def test_validation_tracked_and_best_restored(self, rng):
        x, y = make_blobs(rng)
        x_val, y_val = make_blobs(rng, n_per_class=30)
        net = build_mlp(2, [8], 2, rng)
        trainer = make_trainer(net, rng, max_epochs=30, patience=10)
        history = trainer.fit(x, y, x_val, y_val)
        assert len(history.val_loss) == history.epochs_run
        assert 0 <= history.best_epoch < history.epochs_run
        # Restored parameters should reproduce the best validation loss.
        loss = SoftmaxCrossEntropy()
        restored = loss.forward(net.forward(x_val), y_val)
        np.testing.assert_allclose(restored, min(history.val_loss),
                                   atol=1e-9)

    def test_train_loss_decreases(self, rng):
        x, y = make_blobs(rng)
        net = build_mlp(2, [8], 2, rng)
        history = make_trainer(net, rng, max_epochs=20).fit(x, y)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_invalid_hyperparameters(self, rng):
        net = build_mlp(2, [4], 2, rng)
        with pytest.raises(ValueError):
            make_trainer(net, rng, max_epochs=0)
        with pytest.raises(ValueError):
            make_trainer(net, rng, patience=0)
