"""Batching / label utility tests."""

import numpy as np
import pytest

from repro.nn import iterate_minibatches, one_hot, train_val_split


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 2)


class TestMinibatches:
    def test_covers_all_rows_exactly_once(self, rng):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        seen = []
        for xb, yb in iterate_minibatches(x, y, 3, rng=rng):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_batch_sizes(self, rng):
        x = np.zeros((10, 2))
        y = np.zeros(10)
        sizes = [len(yb) for _, yb in iterate_minibatches(x, y, 4, rng=rng)]
        assert sizes == [4, 4, 2]

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6).reshape(6, 1)
        y = np.arange(6)
        batches = list(iterate_minibatches(x, y, 2, shuffle=False))
        np.testing.assert_array_equal(batches[0][1], [0, 1])
        np.testing.assert_array_equal(batches[2][1], [4, 5])

    def test_shuffle_requires_rng(self):
        with pytest.raises(ValueError, match="requires an rng"):
            list(iterate_minibatches(np.zeros((4, 1)), np.zeros(4), 2))

    def test_x_y_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((4, 1)), np.zeros(5), 2,
                                     rng=rng))

    def test_pairs_stay_aligned_after_shuffle(self, rng):
        x = np.arange(20).reshape(20, 1)
        y = np.arange(20)
        for xb, yb in iterate_minibatches(x, y, 7, rng=rng):
            np.testing.assert_array_equal(xb[:, 0], yb)


class TestTrainValSplit:
    def test_sizes(self, rng):
        x = np.zeros((100, 2))
        y = np.zeros(100)
        xt, yt, xv, yv = train_val_split(x, y, 0.25, rng)
        assert len(xv) == 25 and len(xt) == 75
        assert len(yv) == 25 and len(yt) == 75

    def test_partition_is_exact(self, rng):
        x = np.arange(30).reshape(30, 1)
        y = np.arange(30)
        xt, yt, xv, yv = train_val_split(x, y, 0.3, rng)
        assert sorted(np.concatenate([yt, yv]).tolist()) == list(range(30))

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            train_val_split(np.zeros((4, 1)), np.zeros(4), 1.5, rng)
