"""Optimizer tests: convergence on quadratics and parameter handling."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter


def quadratic_grad(p: Parameter, center: np.ndarray) -> None:
    """Set grad of 0.5*||x - center||^2."""
    p.grad[...] = p.value - center


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -4.0]))
        center = np.array([1.0, 2.0])
        opt = SGD([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_grad(p, center)
            opt.step()
        np.testing.assert_allclose(p.value, center, atol=1e-6)

    def test_momentum_accelerates(self):
        center = np.array([5.0])

        def run(momentum):
            p = Parameter(np.array([0.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_grad(p, center)
                opt.step()
            return abs(p.value[0] - center[0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()  # zero loss gradient; only decay acts
        opt.step()
        assert abs(p.value[0]) < 1.0

    def test_rejects_bad_hyperparameters(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -4.0]))
        center = np.array([1.0, 2.0])
        opt = Adam([p], lr=0.2)
        for _ in range(500):
            opt.zero_grad()
            quadratic_grad(p, center)
            opt.step()
        np.testing.assert_allclose(p.value, center, atol=1e-4)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step has magnitude ~lr
        # regardless of gradient scale.
        for scale in (1e-4, 1.0, 1e4):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.01)
            p.grad[...] = scale
            opt.step()
            np.testing.assert_allclose(abs(p.value[0]), 0.01, rtol=1e-3)

    def test_handles_multiple_parameters(self, rng):
        p1 = Parameter(rng.normal(size=(3,)))
        p2 = Parameter(rng.normal(size=(2, 2)))
        opt = Adam([p1, p2], lr=0.1)
        for _ in range(400):
            opt.zero_grad()
            p1.grad[...] = p1.value
            p2.grad[...] = p2.value
            opt.step()
        np.testing.assert_allclose(p1.value, 0.0, atol=1e-4)
        np.testing.assert_allclose(p2.value, 0.0, atol=1e-4)

    def test_zero_grad_clears(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p])
        p.grad[...] = 5.0
        opt.zero_grad()
        np.testing.assert_allclose(p.grad, 0.0)
