"""Property-based tests for the NN framework (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import (Dense, ReLU, SoftmaxCrossEntropy, Tanh, log_softmax,
                      softmax)

finite_floats = st.floats(min_value=-50.0, max_value=50.0,
                          allow_nan=False, allow_infinity=False)


@st.composite
def logit_matrices(draw):
    rows = draw(st.integers(1, 6))
    cols = draw(st.integers(2, 8))
    return draw(arrays(np.float64, (rows, cols), elements=finite_floats))


@given(logit_matrices())
@settings(max_examples=40, deadline=None)
def test_softmax_is_distribution(logits):
    probs = softmax(logits)
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


@given(logit_matrices(), st.floats(-100, 100, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_softmax_shift_invariant(logits, shift):
    np.testing.assert_allclose(softmax(logits), softmax(logits + shift),
                               atol=1e-9)


@given(logit_matrices())
@settings(max_examples=40, deadline=None)
def test_log_softmax_never_positive(logits):
    assert np.all(log_softmax(logits) <= 1e-12)


@given(logit_matrices())
@settings(max_examples=40, deadline=None)
def test_cross_entropy_non_negative(logits):
    loss = SoftmaxCrossEntropy()
    targets = np.zeros(logits.shape[0], dtype=int)
    assert loss.forward(logits, targets) >= 0.0


@given(logit_matrices())
@settings(max_examples=40, deadline=None)
def test_cross_entropy_gradient_rows_sum_to_zero(logits):
    # d/dlogits of softmax CE sums to zero across classes for each sample.
    loss = SoftmaxCrossEntropy()
    targets = np.zeros(logits.shape[0], dtype=int)
    loss.forward(logits, targets)
    grad = loss.backward()
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)


@given(arrays(np.float64, (4, 5), elements=finite_floats))
@settings(max_examples=40, deadline=None)
def test_relu_idempotent(x):
    relu = ReLU()
    once = relu.forward(x)
    np.testing.assert_array_equal(once, relu.forward(once))


@given(arrays(np.float64, (3, 4), elements=finite_floats))
@settings(max_examples=40, deadline=None)
def test_tanh_bounded(x):
    out = Tanh().forward(x)
    assert np.all(np.abs(out) <= 1.0)


@given(arrays(np.float64, (2, 3), elements=finite_floats),
       st.integers(0, 2 ** 31 - 1))
@settings(max_examples=30, deadline=None)
def test_dense_is_linear(x, seed):
    layer = Dense(3, 2, np.random.default_rng(seed))
    out_sum = layer.forward(x) + layer.forward(2 * x)
    out_joint = layer.forward(3 * x) + layer.bias.value  # f(a)+f(b)=f(a+b)+bias
    np.testing.assert_allclose(out_sum, out_joint, atol=1e-8)
