"""Loss function tests: values, gradients, and input validation."""

import numpy as np
import pytest

from repro.nn import (BinaryCrossEntropy, MeanSquaredError,
                      SoftmaxCrossEntropy, log_softmax, softmax)


class TestSoftmaxHelpers:
    def test_softmax_sums_to_one(self, rng):
        logits = rng.normal(size=(5, 7))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits),
                                   softmax(logits + 100.0), atol=1e-12)

    def test_log_softmax_stable_for_large_logits(self):
        logits = np.array([[1e4, 0.0]])
        out = log_softmax(logits)
        assert np.all(np.isfinite(out))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = rng.normal(size=(2, 6))
        np.testing.assert_allclose(log_softmax(logits),
                                   np.log(softmax(logits)), atol=1e-12)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_gives_small_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        value = loss.forward(logits, np.array([0, 1]))
        assert value < 1e-6

    def test_uniform_prediction_gives_log_k(self):
        loss = SoftmaxCrossEntropy()
        k = 8
        value = loss.forward(np.zeros((3, k)), np.array([0, 3, 7]))
        np.testing.assert_allclose(value, np.log(k), atol=1e-12)

    def test_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 5))
        targets = np.array([0, 2, 4, 1])
        loss.forward(logits, targets)
        grad = loss.backward()

        eps = 1e-6
        num = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                logits[i, j] += eps
                plus = loss.forward(logits, targets)
                logits[i, j] -= 2 * eps
                minus = loss.forward(logits, targets)
                logits[i, j] += eps
                num[i, j] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad, num, atol=1e-5)

    def test_rejects_out_of_range_targets(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError, match="out of range"):
            loss.forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_rejects_shape_mismatch(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0, 1, 2]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestMeanSquaredError:
    def test_zero_for_equal_inputs(self, rng):
        loss = MeanSquaredError()
        x = rng.normal(size=(3, 3))
        assert loss.forward(x, x.copy()) == 0.0

    def test_gradient_direction(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0]])
        target = np.array([[0.0]])
        loss.forward(pred, target)
        grad = loss.backward()
        assert grad[0, 0] > 0  # increasing pred increases loss

    def test_gradient_matches_numerical(self, rng):
        loss = MeanSquaredError()
        pred = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 3))
        loss.forward(pred, target)
        grad = loss.backward()
        np.testing.assert_allclose(grad, 2 * (pred - target) / pred.size)


class TestBinaryCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.array([0.999999, 0.000001]),
                             np.array([1.0, 0.0]))
        assert value < 1e-4

    def test_gradient_matches_numerical(self, rng):
        loss = BinaryCrossEntropy()
        pred = rng.uniform(0.1, 0.9, size=(6,))
        target = (rng.random(6) > 0.5).astype(float)
        loss.forward(pred, target)
        grad = loss.backward()
        eps = 1e-7
        num = np.zeros_like(pred)
        for i in range(pred.size):
            pred[i] += eps
            plus = loss.forward(pred, target)
            pred[i] -= 2 * eps
            minus = loss.forward(pred, target)
            pred[i] += eps
            num[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad, num, atol=1e-4)
