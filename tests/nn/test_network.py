"""Sequential container and MLP builder tests."""

import numpy as np
import pytest

from repro.nn import Dense, ReLU, Sequential, build_mlp


class TestSequential:
    def test_parameters_collected_from_all_layers(self, rng):
        net = Sequential([Dense(3, 4, rng), ReLU(), Dense(4, 2, rng)])
        assert len(net.parameters()) == 4  # two weights + two biases

    def test_num_parameters(self, rng):
        net = Sequential([Dense(3, 4, rng), Dense(4, 2, rng)])
        assert net.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2)

    def test_forward_composes(self, rng):
        d1, d2 = Dense(2, 2, rng), Dense(2, 2, rng)
        net = Sequential([d1, d2])
        x = rng.normal(size=(3, 2))
        np.testing.assert_allclose(net.forward(x), d2.forward(d1.forward(x)))

    def test_backward_shape(self, rng):
        net = Sequential([Dense(3, 5, rng), ReLU(), Dense(5, 2, rng)])
        x = rng.normal(size=(4, 3))
        net.forward(x, training=True)
        grad = net.backward(np.ones((4, 2)))
        assert grad.shape == (4, 3)

    def test_predict_proba_rows_sum_to_one(self, rng):
        net = build_mlp(3, [4], 5, rng)
        probs = net.predict_proba(rng.normal(size=(6, 3)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_predict_returns_argmax(self, rng):
        net = build_mlp(3, [4], 5, rng)
        x = rng.normal(size=(6, 3))
        np.testing.assert_array_equal(
            net.predict(x), np.argmax(net.forward(x), axis=1))

    def test_layer_sizes(self, rng):
        net = build_mlp(10, [20, 40, 20], 32, rng)
        assert net.layer_sizes() == [(10, 20), (20, 40), (40, 20), (20, 32)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestBuildMLP:
    def test_paper_baseline_architecture(self, rng):
        net = build_mlp(1000, [500, 250], 32, rng)
        assert net.layer_sizes() == [(1000, 500), (500, 250), (250, 32)]

    def test_paper_herqules_architecture(self, rng):
        n = 5
        net = build_mlp(2 * n, [2 * n, 4 * n, 2 * n], 2 ** n, rng)
        assert net.layer_sizes() == [(10, 10), (10, 20), (20, 10), (10, 32)]

    def test_deterministic_given_seed(self):
        net1 = build_mlp(4, [8], 3, np.random.default_rng(0))
        net2 = build_mlp(4, [8], 3, np.random.default_rng(0))
        for p1, p2 in zip(net1.parameters(), net2.parameters()):
            np.testing.assert_array_equal(p1.value, p2.value)

    def test_unknown_activation_rejected(self, rng):
        with pytest.raises(KeyError):
            build_mlp(2, [2], 2, rng, activation="mish")
