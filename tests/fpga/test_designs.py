"""Paper-number reproduction tests for the FPGA design estimates."""

import pytest

from repro.fpga import (VU13P, XCZU7EV, ZU28DR, baseline_cost,
                        fig4c_fnn_cost, get_device, herqules_cost,
                        max_qubits_per_fpga)


class TestTable4Calibration:
    """Table 4 of the paper, reproduced by the analytic model."""

    @pytest.mark.parametrize("rf,paper_lut", [(200, 468.64), (500, 266.86),
                                              (1000, 216.72)])
    def test_baseline_lut_within_10_percent(self, rf, paper_lut):
        lut = baseline_cost(rf).utilization(XCZU7EV)["LUT"]
        assert lut == pytest.approx(paper_lut, rel=0.10)

    @pytest.mark.parametrize("rf,paper_cycles", [(200, 924), (500, 2023),
                                                 (1000, 4023)])
    def test_baseline_latency_within_10_percent(self, rf, paper_cycles):
        cycles = baseline_cost(rf).latency_cycles
        assert cycles == pytest.approx(paper_cycles, rel=0.10)

    @pytest.mark.parametrize("rf,paper_lut", [(4, 7.79), (64, 7.24)])
    def test_herqules_lut_within_half_point(self, rf, paper_lut):
        lut = herqules_cost(rf).utilization(XCZU7EV)["LUT"]
        assert lut == pytest.approx(paper_lut, abs=0.5)

    def test_latency_gap_orders_of_magnitude(self):
        herq = herqules_cost(4).latency_cycles
        base = baseline_cost(1000).latency_cycles
        assert base / herq > 50

    def test_baseline_never_fits(self):
        for rf in (200, 500, 1000):
            assert not baseline_cost(rf).fits(XCZU7EV)

    def test_herqules_always_fits(self):
        for rf in (1, 4, 16, 64):
            assert herqules_cost(rf).fits(XCZU7EV)


class TestFig7d:
    def test_rmf_increment_is_marginal(self):
        mf_nn = herqules_cost(4, use_rmf=False).utilization(XCZU7EV)["LUT"]
        full = herqules_cost(4, use_rmf=True).utilization(XCZU7EV)["LUT"]
        assert mf_nn < full < mf_nn + 1.0  # paper: 7.15 -> 7.79


class TestFig14a:
    def test_all_resources_below_10_percent(self):
        util = herqules_cost(4).utilization(XCZU7EV)
        for name in ("LUT", "FF", "BRAM"):
            assert util[name] < 10.0

    def test_lut_dominates(self):
        util = herqules_cost(4).utilization(XCZU7EV)
        assert util["LUT"] > util["FF"]
        assert util["LUT"] > util["BRAM"]


class TestFig4c:
    def test_forty_percent_fnn_overflows_4x(self):
        lut = fig4c_fnn_cost(reuse_factor=25).utilization(XCZU7EV)["LUT"]
        assert 350 < lut < 500  # paper: ~4x over capacity


class TestScalability:
    def test_rfsoc_reads_more_than_50_qubits(self):
        assert max_qubits_per_fpga(device=ZU28DR) > 50

    def test_bigger_device_fits_more(self):
        assert max_qubits_per_fpga(device=VU13P) \
            > max_qubits_per_fpga(device=XCZU7EV)

    def test_budget_fraction_monotone(self):
        assert max_qubits_per_fpga(budget_fraction=0.8) \
            >= max_qubits_per_fpga(budget_fraction=0.4)


class TestDeviceCatalog:
    def test_lookup(self):
        assert get_device(XCZU7EV.name) is XCZU7EV
        with pytest.raises(KeyError):
            get_device("xc7a35t")

    def test_paper_target_resources(self):
        assert XCZU7EV.luts == 230_400
        assert XCZU7EV.dsps == 1_728
