"""FPGA cost model tests: calibration against the paper's numbers."""

import pytest

from repro.fpga import (ResourceEstimate, XCZU7EV, dense_layer_sizes,
                        estimate_infrastructure,
                        estimate_matched_filter_bank, estimate_mlp)


class TestDenseLayerSizes:
    def test_baseline_architecture(self):
        assert dense_layer_sizes(1000, [500, 250], 32) == [
            (1000, 500), (500, 250), (250, 32)]

    def test_single_layer(self):
        assert dense_layer_sizes(4, [], 2) == [(4, 2)]


class TestEstimateMLP:
    def test_dsp_regime_for_small_network(self):
        layers = dense_layer_sizes(10, [20], 32)
        cost = estimate_mlp(layers, reuse_factor=4)
        assert cost.dsps > 0  # small nets map to DSP slices

    def test_fabric_regime_for_large_network(self):
        layers = dense_layer_sizes(1000, [500, 250], 32)
        cost = estimate_mlp(layers, reuse_factor=500)
        assert cost.dsps == 0  # weight arrays overflow BRAM -> fabric mults

    def test_luts_decrease_with_reuse(self):
        layers = dense_layer_sizes(1000, [500, 250], 32)
        luts = [estimate_mlp(layers, rf).luts for rf in (100, 400, 1000)]
        assert luts[0] > luts[1] > luts[2]

    def test_latency_increases_with_reuse(self):
        layers = dense_layer_sizes(1000, [500, 250], 32)
        lats = [estimate_mlp(layers, rf).latency_cycles
                for rf in (100, 400, 1000)]
        assert lats[0] < lats[1] < lats[2]

    def test_latency_capped_by_layer_work(self):
        # A layer with 8 weights cannot take more than 8 MAC cycles even at
        # a huge nominal reuse factor.
        cost = estimate_mlp([(2, 4)], reuse_factor=1000)
        assert cost.latency_cycles < 1000 + 50

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            estimate_mlp([(10, 10)], reuse_factor=0)
        with pytest.raises(ValueError):
            estimate_mlp([], reuse_factor=4)

    def test_utilization_percentages(self):
        cost = ResourceEstimate(luts=XCZU7EV.luts / 2, flip_flops=0, dsps=0,
                                brams=0, latency_cycles=0)
        assert cost.utilization(XCZU7EV)["LUT"] == pytest.approx(50.0)

    def test_fits_budget(self):
        small = ResourceEstimate(luts=1000, flip_flops=1000, dsps=10,
                                 brams=2, latency_cycles=0)
        assert small.fits(XCZU7EV)
        assert not small.fits(XCZU7EV, budget_fraction=0.001)

    def test_addition(self):
        a = ResourceEstimate(1, 2, 3, 4, 5, multipliers=1)
        b = ResourceEstimate(10, 20, 30, 40, 50, multipliers=2)
        total = a + b
        assert total.luts == 11
        assert total.latency_cycles == 55
        assert total.multipliers == 3


class TestMatchedFilterBank:
    def test_streaming_adds_no_latency(self):
        cost = estimate_matched_filter_bank(5, 20)
        assert cost.latency_cycles == 0

    def test_rmf_doubles_macs(self):
        with_rmf = estimate_matched_filter_bank(5, 20, use_rmf=True)
        without = estimate_matched_filter_bank(5, 20, use_rmf=False)
        assert with_rmf.multipliers == 2 * without.multipliers

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_matched_filter_bank(0, 20)


class TestInfrastructure:
    def test_scales_with_qubits(self):
        one = estimate_infrastructure(1)
        five = estimate_infrastructure(5)
        assert five.luts == pytest.approx(5 * one.luts)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_infrastructure(0)


class TestEstimatePipeline:
    """FPGA export directly from a fitted pipeline's stage list."""

    @pytest.mark.parametrize("name", ["mf", "mf-svm", "mf-nn", "mf-rmf-svm",
                                      "mf-rmf-nn", "centroid", "boxcar"])
    def test_every_demod_design_exports(self, name, small_splits):
        from repro.core import FAST_CONFIG, make_design
        from repro.fpga import XCZU7EV, estimate_pipeline

        train, val, _ = small_splits
        design = make_design(name, FAST_CONFIG).fit(train, val)
        cost = estimate_pipeline(design, reuse_factor=4)
        assert cost.luts > 0 and cost.dsps > 0
        assert cost.fits(XCZU7EV)

    def test_matches_herqules_cost_model(self, small_splits):
        from repro.core import FAST_CONFIG, make_design
        from repro.fpga import herqules_cost, estimate_pipeline

        train, val, _ = small_splits
        design = make_design("mf-rmf-nn", FAST_CONFIG).fit(train, val)
        cost = estimate_pipeline(design, reuse_factor=4)
        reference = herqules_cost(4, n_qubits=train.n_qubits,
                                  n_bins=train.n_bins, use_rmf=True)
        assert cost.luts == pytest.approx(reference.luts)
        assert cost.latency_cycles == pytest.approx(reference.latency_cycles)

    def test_unfitted_rejected(self):
        from repro.core import FAST_CONFIG, make_design
        from repro.fpga import estimate_pipeline

        with pytest.raises(ValueError, match="fitted"):
            estimate_pipeline(make_design("mf", FAST_CONFIG))
