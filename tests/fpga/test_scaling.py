"""Shared-vs-independent FNN scaling tests (paper Section 8)."""

import pytest

from repro.fpga import (XCZU7EV, ZU28DR, independent_fnns, scaling_sweep,
                        shared_fnn, shared_fnn_feature_layers_only)


class TestIndependentScaling:
    def test_linear_resource_growth(self):
        one = independent_fnns(1)
        four = independent_fnns(4)
        assert four.cost.luts == pytest.approx(4 * one.cost.luts)
        assert four.n_qubits == 20

    def test_output_layer_constant(self):
        assert independent_fnns(1).output_layer_width == 32
        assert independent_fnns(8).output_layer_width == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            independent_fnns(0)


class TestSharedScaling:
    def test_output_layer_exponential(self):
        assert shared_fnn(1).output_layer_width == 2 ** 5
        assert shared_fnn(2).output_layer_width == 2 ** 10
        assert shared_fnn(4).output_layer_width == 2 ** 20

    def test_shared_stops_fitting_quickly(self):
        """The paper's point: the 2^(mN) softmax becomes prohibitive."""
        assert shared_fnn(1).fits
        assert not shared_fnn(4).fits  # 2^20 outputs

    def test_modeling_cap(self):
        with pytest.raises(ValueError, match="40"):
            shared_fnn(9)  # 45 qubits -> 2^45 outputs

    def test_partitioned_variant_scales_much_further(self):
        """Delegating the softmax to the CPU (hardware/software split)
        keeps the FPGA part polynomial: ~5000x cheaper at 20 qubits, and it
        fits once the reuse factor is raised."""
        full = shared_fnn(4)
        partitioned = shared_fnn_feature_layers_only(4)
        assert partitioned.cost.luts < 0.01 * full.cost.luts
        assert shared_fnn_feature_layers_only(4, reuse_factor=64).fits


class TestSweep:
    def test_sweep_covers_all_strategies(self):
        points = scaling_sweep(3)
        strategies = {p.strategy for p in points}
        assert strategies == {"independent", "shared", "shared-partitioned"}

    def test_independent_wins_at_scale(self):
        """For many groups, independent FNNs fit where the shared FNN
        cannot — the deployment recommendation implied by Section 8."""
        points = {(p.strategy, p.n_groups): p for p in scaling_sweep(4)}
        assert points[("independent", 4)].fits \
            or points[("independent", 4)].cost.luts \
            < points[("shared", 4)].cost.luts

    def test_bigger_device_helps(self):
        small = independent_fnns(10, device=XCZU7EV)
        big = independent_fnns(10, device=ZU28DR)
        assert big.fits or big.cost.utilization(ZU28DR)["LUT"] \
            < small.cost.utilization(XCZU7EV)["LUT"]
