"""Unit tests for trace contexts, sampling, and flight recording."""

import json

import pytest

from repro.obs.trace import (FlightRecorder, TraceContext, Tracer,
                             merge_spans)


class TestTraceContext:
    def test_duration_zero_until_finished(self):
        trace = TraceContext(1, started_at=10.0)
        assert not trace.finished
        assert trace.duration_s == 0.0
        trace.finish(10.5)
        assert trace.finished
        assert trace.duration_s == pytest.approx(0.5)

    def test_sorted_spans_orders_by_start(self):
        trace = TraceContext(1, started_at=0.0)
        trace.add_span("b", 0.5, 0.7)
        trace.add_span("a", 0.0, 0.5)
        assert trace.span_names() == ["a", "b"]

    def test_full_coverage_has_no_gaps(self):
        trace = TraceContext(1, started_at=0.0)
        trace.add_span("first", 0.0, 0.4)
        trace.add_span("overlap", 0.3, 0.8)
        trace.add_span("last", 0.8, 1.0)
        trace.finish(1.0)
        assert trace.gaps() == []

    def test_uncovered_interval_is_a_gap(self):
        trace = TraceContext(1, started_at=0.0)
        trace.add_span("head", 0.0, 0.3)
        trace.add_span("tail", 0.6, 1.0)
        trace.finish(1.0)
        assert trace.gaps() == [(0.3, 0.6)]

    def test_trailing_gap_reported(self):
        trace = TraceContext(1, started_at=0.0)
        trace.add_span("head", 0.0, 0.4)
        trace.finish(1.0)
        assert trace.gaps() == [(0.4, 1.0)]

    def test_epsilon_tolerates_micro_gaps(self):
        trace = TraceContext(1, started_at=0.0)
        trace.add_span("head", 0.0, 0.5)
        trace.add_span("tail", 0.5005, 1.0)
        trace.finish(1.0)
        assert trace.gaps() != []
        assert trace.gaps(epsilon_s=1e-3) == []

    def test_to_dict_rebases_onto_start(self):
        trace = TraceContext(7, started_at=100.0)
        trace.add_span("stage", 100.1, 100.2)
        trace.finish(100.25)
        payload = trace.to_dict()
        assert payload["trace_id"] == 7
        assert payload["duration_ms"] == pytest.approx(250.0)
        [span] = payload["spans"]
        assert span["start_ms"] == pytest.approx(100.0)
        assert span["end_ms"] == pytest.approx(200.0)
        json.dumps(payload)   # JSON-safe


class TestFlightRecorder:
    @staticmethod
    def _trace(trace_id, duration):
        trace = TraceContext(trace_id, started_at=0.0)
        trace.finish(duration)
        return trace

    def test_retains_n_slowest_in_order(self):
        recorder = FlightRecorder(max_slowest=3, sample_size=0)
        for i in range(20):
            recorder.record(self._trace(i, duration=float(i)))
        assert recorder.recorded == 20
        assert [t.trace_id for t in recorder.slowest()] == [19, 18, 17]

    def test_sample_is_bounded(self):
        recorder = FlightRecorder(max_slowest=0, sample_size=8, seed=1)
        for i in range(100):
            recorder.record(self._trace(i, duration=1.0))
        assert len(recorder.sample()) == 8
        assert recorder.recorded == 100

    def test_find_and_clear(self):
        recorder = FlightRecorder(max_slowest=4, sample_size=4)
        recorder.record(self._trace(42, duration=1.0))
        assert recorder.find(42) is not None
        assert recorder.find(43) is None
        recorder.clear()
        assert recorder.recorded == 0
        assert recorder.find(42) is None

    def test_traces_deduplicates_slow_and_sampled(self):
        recorder = FlightRecorder(max_slowest=4, sample_size=4)
        recorder.record(self._trace(1, duration=1.0))
        assert len(recorder.traces()) == 1

    def test_stats_and_dump_are_json_safe(self):
        recorder = FlightRecorder(max_slowest=2, sample_size=2)
        recorder.record(self._trace(1, duration=0.25))
        stats = recorder.stats()
        assert stats["recorded"] == 1.0
        assert stats["slowest_ms"] == pytest.approx(250.0)
        json.dumps(recorder.dump())

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(max_slowest=-1)


class TestTracer:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)

    def test_rate_zero_never_samples(self):
        tracer = Tracer(0.0)
        assert not tracer.enabled
        assert all(tracer.sample() is None for _ in range(50))

    def test_rate_one_always_samples(self):
        tracer = Tracer(1.0)
        ids = [tracer.sample().trace_id for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]   # 0 means "no trace" on the wire

    def test_fractional_rate_is_deterministic(self):
        tracer = Tracer(0.1)
        sampled = [tracer.sample() is not None for _ in range(30)]
        assert sum(sampled) == 3
        # exactly every 10th request, not a random 10%
        assert [i for i, hit in enumerate(sampled) if hit] == [9, 19, 29]

    def test_start_forces_a_context(self):
        tracer = Tracer(0.0)
        assert tracer.start() is not None

    def test_record_finishes_and_retains(self):
        recorder = FlightRecorder()
        tracer = Tracer(1.0, recorder)
        trace = tracer.sample()
        tracer.record(trace)
        assert trace.finished
        assert recorder.recorded == 1


def test_merge_spans_attaches_by_trace_id():
    a, b = TraceContext(1, started_at=0.0), TraceContext(2, started_at=0.0)
    attached = merge_spans(
        [a, b], {1: [("worker", 0.1, 0.2)], 3: [("orphan", 0.0, 0.1)]})
    assert attached == 1
    assert a.span_names() == ["worker"]
    assert b.span_names() == []
