"""Telemetry store math and the sampler lifecycle."""

import math
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (TelemetrySampler, TelemetryStore,
                                  flatten_numeric)


class TestFlattenNumeric:
    def test_numeric_leaves_by_dotted_path(self):
        flat = flatten_numeric({
            "serve": {"completed": 7, "p99_ms": 1.5, "backend": "thread",
                      "healthy": True, "shards": [2, 3]},
        })
        assert flat == {"serve.completed": 7.0, "serve.p99_ms": 1.5,
                        "serve.healthy": 1.0, "serve.shards.0": 2.0,
                        "serve.shards.1": 3.0}

    def test_matches_export_text_paths(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", lambda: {
            "completed": 7, "nested": {"x": 1}, "name": "skip"})
        registry.counter("rejects").inc(2)
        flat = flatten_numeric(registry.export_dict())
        text_paths = {line.rsplit(" ", 1)[0]
                      for line in registry.export_text().splitlines()}
        assert set(flat) == text_paths

    def test_nan_leaves_survive(self):
        flat = flatten_numeric({"p99_ms": float("nan")})
        assert math.isnan(flat["p99_ms"])


class TestTelemetryStore:
    def test_bounded_ring(self):
        store = TelemetryStore(max_samples=4)
        for i in range(10):
            store.ingest({"x": float(i)}, now=float(i))
        assert store.series("x") == [(6.0, 6.0), (7.0, 7.0),
                                     (8.0, 8.0), (9.0, 9.0)]
        assert store.latest("x") == 9.0
        assert store.ingested == 10

    def test_needs_two_slots(self):
        with pytest.raises(ValueError):
            TelemetryStore(max_samples=1)

    def test_delta_and_rate_use_window_baseline(self):
        store = TelemetryStore()
        # Cumulative counter: +10 per second.
        for t in range(8):
            store.ingest({"done": 10.0 * t}, now=float(t))
        # Window of 3 s ending at t=7: baseline is the sample at t=4.
        assert store.delta("done", 3.0, now=7.0) == pytest.approx(30.0)
        assert store.rate("done", 3.0, now=7.0) == pytest.approx(10.0)
        # Window longer than history: oldest sample is the baseline.
        assert store.delta("done", 100.0, now=7.0) == pytest.approx(70.0)

    def test_delta_unknown_series_is_none(self):
        store = TelemetryStore()
        assert store.delta("nope", 30.0) is None
        assert store.rate("nope", 30.0) is None
        assert store.latest("nope") is None

    def test_single_sample_delta_is_zero(self):
        store = TelemetryStore()
        store.ingest({"x": 5.0}, now=0.0)
        assert store.delta("x", 30.0, now=0.0) == 0.0
        assert store.rate("x", 30.0, now=0.0) == 0.0

    def test_window_returns_samples_inside(self):
        store = TelemetryStore()
        for t in range(6):
            store.ingest({"x": float(t)}, now=float(t))
        assert store.window("x", 2.0, now=5.0) == [
            (3.0, 3.0), (4.0, 4.0), (5.0, 5.0)]

    def test_quantile_from_buckets_windowed(self):
        store = TelemetryStore()
        prefix = "metrics.lat_ms"
        # At t=0 the histogram has 100 old observations all <= 1 ms.
        store.ingest({f"{prefix}.buckets.le_1": 100.0,
                      f"{prefix}.buckets.le_10": 100.0,
                      f"{prefix}.buckets.le_inf": 100.0}, now=0.0)
        # During the window, 100 new observations land in (1, 10].
        store.ingest({f"{prefix}.buckets.le_1": 100.0,
                      f"{prefix}.buckets.le_10": 200.0,
                      f"{prefix}.buckets.le_inf": 200.0}, now=10.0)
        p50 = store.quantile_from_buckets(prefix, 0.5, 30.0, now=10.0)
        # All windowed mass is in (1, 10]: the median interpolates there,
        # and the old <=1ms observations do not drag it down.
        assert 1.0 < p50 <= 10.0
        assert p50 == pytest.approx(5.5)

    def test_quantile_empty_window_is_none(self):
        store = TelemetryStore()
        prefix = "metrics.lat_ms"
        store.ingest({f"{prefix}.buckets.le_1": 50.0,
                      f"{prefix}.buckets.le_inf": 50.0}, now=0.0)
        store.ingest({f"{prefix}.buckets.le_1": 50.0,
                      f"{prefix}.buckets.le_inf": 50.0}, now=10.0)
        assert store.quantile_from_buckets(prefix, 0.99, 5.0,
                                           now=10.0) is None
        assert store.quantile_from_buckets("unknown", 0.99, 5.0) is None

    def test_quantile_overflow_bucket_reports_highest_bound(self):
        store = TelemetryStore()
        prefix = "m.h"
        store.ingest({f"{prefix}.buckets.le_1": 0.0,
                      f"{prefix}.buckets.le_inf": 0.0}, now=0.0)
        store.ingest({f"{prefix}.buckets.le_1": 0.0,
                      f"{prefix}.buckets.le_inf": 10.0}, now=1.0)
        assert store.quantile_from_buckets(prefix, 0.99, 30.0,
                                           now=1.0) == 1.0

    def test_bad_quantile_raises(self):
        with pytest.raises(ValueError):
            TelemetryStore().quantile_from_buckets("x", 0.0, 30.0)

    def test_dump_roundtrip(self):
        import json

        store = TelemetryStore(max_samples=8)
        for t in range(5):
            store.ingest({"a": float(t), "b": 2.0 * t}, now=float(t))
        payload = json.loads(json.dumps(store.dump()))
        clone = TelemetryStore.from_dump(payload)
        assert clone.series("a") == store.series("a")
        assert clone.series("b") == store.series("b")
        assert clone.delta("b", 10.0, now=4.0) == \
            store.delta("b", 10.0, now=4.0)
        assert clone.ingested == store.ingested
        assert clone.end_time() == 4.0

    def test_concurrent_ingest_and_read(self):
        store = TelemetryStore(max_samples=64)
        stop = threading.Event()
        errors = []

        def write():
            t = 0.0
            while not stop.is_set():
                store.ingest({"x": t, "y": -t}, now=t)
                t += 1.0

        def read():
            try:
                while not stop.is_set():
                    store.delta("x", 10.0)
                    store.rate("y", 10.0)
                    store.dump()
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=write),
                   threading.Thread(target=read),
                   threading.Thread(target=read)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []


class TestTelemetrySampler:
    def test_sample_once_flattens_registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("done")
        counter.inc(3)
        sampler = TelemetrySampler(registry, interval_s=1.0)
        flat = sampler.sample_once(now=0.0)
        assert flat["metrics.done"] == 3.0
        assert sampler.store.latest("metrics.done") == 3.0
        assert sampler.samples == 1

    def test_registers_its_own_collector(self):
        registry = MetricsRegistry()
        sampler = TelemetrySampler(registry, interval_s=0.5)
        sampler.sample_once(now=0.0)
        # The sampler's health shows up in the exports it takes.
        assert sampler.store.latest("telemetry.samples") == 0.0
        sampler.sample_once(now=1.0)
        assert sampler.store.latest("telemetry.samples") == 1.0
        assert sampler.store.latest("telemetry.interval_s") == 0.5

    def test_background_thread_samples_and_stops(self):
        registry = MetricsRegistry()
        counter = registry.counter("done")
        sampler = TelemetrySampler(registry, interval_s=0.01)
        with sampler:
            counter.inc(5)
            deadline = time.time() + 5.0
            while time.time() < deadline and sampler.samples < 4:
                time.sleep(0.005)
            assert sampler.samples >= 4
        assert not sampler.running
        assert sampler.store.latest("metrics.done") == 5.0
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_start_takes_a_synchronous_baseline(self):
        registry = MetricsRegistry()
        registry.counter("done").inc(0)
        sampler = TelemetrySampler(registry, interval_s=60.0)
        try:
            sampler.start()
            # No interval has elapsed, yet the baseline sample exists —
            # deltas of anything that happens now have a "before" point.
            assert sampler.samples == 1
            assert sampler.store.latest("metrics.done") == 0.0
        finally:
            sampler.stop()

    def test_stop_is_idempotent_and_samples_once_more(self):
        registry = MetricsRegistry()
        sampler = TelemetrySampler(registry, interval_s=10.0)
        sampler.start()
        before = sampler.samples
        sampler.stop()
        sampler.stop()
        # The final on-stop tick ran exactly once.
        assert sampler.samples == before + 1

    def test_broken_rule_is_counted_not_raised(self):
        class BrokenAlerts:
            rules = ()

            def evaluate(self, store, now=None):
                raise RuntimeError("boom")

        registry = MetricsRegistry()
        sampler = TelemetrySampler(registry, interval_s=1.0,
                                   alerts=BrokenAlerts())
        sampler.sample_once(now=0.0)
        assert sampler.samples == 1
        assert sampler.rule_errors == 1

    def test_bad_interval_raises(self):
        with pytest.raises(ValueError):
            TelemetrySampler(MetricsRegistry(), interval_s=0.0)
