"""The ops console: sparklines, panels, live servers, and the CLI."""

import json
import os
import subprocess
import sys

from repro.obs.bundle import write_debug_bundle
from repro.obs.console import build_payload, render_console, sparkline
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetryStore
from repro.obs.trace import FlightRecorder, TraceContext


def synthetic_bundle_payload():
    """A bundle-shaped payload exercising every panel."""
    store = TelemetryStore()
    for t in range(10):
        store.ingest({
            "serve.completed": 50.0 * t,
            "serve.traces_done": 50.0 * t,
            "serve.rejected": 0.0,
            "serve.shed": 0.0,
            "serve.swaps": 0.0,
            "serve.worker_deaths": 0.0 if t < 6 else 1.0,
            "serve.p99_ms": 4.5,
        }, now=float(t))
    return {
        "path": "/bundles/incident-1",
        "manifest": {
            "reason": "alert:worker_death",
            "wall_time_iso": "2026-08-08T12:00:00+0000",
            "server": {"type": "ReadoutServer", "n_shards": 2,
                       "backend": "ProcessShardBackend",
                       "worker_pids": [101, 102]},
        },
        "telemetry": store.dump(),
        "alerts": {
            "active": 1, "fired_total": 1, "evaluations": 10,
            "rules": {
                "worker_death": {
                    "firing": True, "fired_count": 1,
                    "rule": {"severity": "critical"},
                    "last_detail": {"observed": 1.0},
                },
                "p99_breach": {
                    "firing": False, "fired_count": 0,
                    "rule": {"severity": "warning"},
                },
            },
        },
        "health": {
            "healthy": False,
            "shards": [
                {"shard_index": 0, "healthy": False,
                 "round_trip_ms": float("nan"), "engine_version": 1,
                 "exit_code": -9},
                {"shard_index": 1, "healthy": True,
                 "round_trip_ms": 2.5, "engine_version": 1},
            ],
            "error": "probe timed out",
        },
        "flight_recorder": {
            "recorded": 12,
            "slowest": [{
                "trace_id": 7, "duration_ms": 5.0,
                "spans": [
                    {"name": "queue_wait", "start_ms": 0.0, "end_ms": 2.0},
                    {"name": "inference", "start_ms": 2.0, "end_ms": 4.5},
                    {"name": "resolve", "start_ms": 4.5, "end_ms": 5.0},
                ],
            }],
            "sample": [],
        },
        "events_tail": [
            {"ts": 1.0, "level": "info", "component": "serve",
             "event": "server_start", "shards": 2},
            {"ts": 2.0, "level": "warning", "component": "worker",
             "event": "worker_death", "shard": 0, "exit_code": -9},
        ],
    }


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] < line[-1]
        assert line[-1] == "█"

    def test_constant_series_renders_mid_height(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_nan_renders_as_gap(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_width_keeps_newest(self):
        line = sparkline([0] * 50 + [9], width=8)
        assert len(line) == 8
        assert line[-1] == "█"


class TestRenderConsole:
    def test_all_panels_render(self):
        text = render_console(synthetic_bundle_payload())
        assert "readout serving console" in text
        assert "reason: alert:worker_death" in text
        assert "2 shards" in text
        assert "requests/s" in text
        assert "worker deaths" in text
        assert "[FIRING] worker_death (critical)" in text
        assert "fired x1" in text
        assert "UNHEALTHY" in text
        assert "exit_code=-9" in text
        assert "probe timed out" in text
        assert "slowest trace (id 7" in text
        assert "queue_wait" in text
        assert "worker_death" in text
        assert "server_start" in text

    def test_rates_come_from_windowed_math(self):
        text = render_console(synthetic_bundle_payload())
        # 50 completions per 1 s sample over the window = 50/s.
        for line in text.splitlines():
            if line.startswith("requests/s"):
                assert "50" in line
                break
        else:  # pragma: no cover - the panel must exist
            raise AssertionError("requests/s row missing")

    def test_empty_payload_renders_header_only(self):
        text = render_console({"path": "/nowhere"})
        assert "readout serving console" in text
        assert "alerts" not in text

    def test_bundle_directory_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("done").inc(3)
        store = TelemetryStore()
        store.ingest({"serve.completed": 5.0}, now=0.0)
        store.ingest({"serve.completed": 25.0}, now=1.0)
        recorder = FlightRecorder()
        trace = TraceContext(1, started_at=0.0)
        trace.add_span("inference", 0.0, 0.001)
        trace.finish(0.002)
        recorder.record(trace)
        write_debug_bundle(str(tmp_path / "b"), registry=registry,
                           telemetry=store, flight_recorder=recorder)
        text = render_console(str(tmp_path / "b"))
        assert "requests/s" in text
        assert "slowest trace (id 1" in text

    def test_live_server_duck_typing(self):
        registry = MetricsRegistry()
        registry.counter("done").inc(2)
        store = TelemetryStore()
        store.ingest({"serve.completed": 1.0}, now=0.0)

        class FakeSampler:
            def __init__(self):
                self.store = store

        class FakeServer:
            metrics = registry
            telemetry = FakeSampler()
            alerts = None
            flight_recorder = None
            last_health = None

        payload = build_payload(FakeServer())
        assert payload["path"] == "<live>"
        assert "alerts" not in payload
        text = render_console(FakeServer())
        assert "requests/s" in text


class TestConsoleCli:
    def test_cli_renders_saved_bundle(self, tmp_path):
        payload = synthetic_bundle_payload()
        bundle = tmp_path / "b"
        bundle.mkdir()
        for name in ("manifest", "telemetry", "alerts",
                     "flight_recorder"):
            (bundle / f"{name}.json").write_text(
                json.dumps(payload[name]))
        env = dict(os.environ)
        env["PYTHONPATH"] = ("src" + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else "src")
        out = subprocess.run(
            [sys.executable, "-m", "repro.obs.console", str(bundle)],
            capture_output=True, text=True, env=env, timeout=60)
        assert out.returncode == 0, out.stderr
        assert "found in sys.modules" not in out.stderr
        assert "[FIRING] worker_death" in out.stdout
        assert "requests/s" in out.stdout
