"""Signal-safe shutdown: bundle, drain, restore, escalate."""

import json
import os
import signal

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.signals import install_signal_handlers


class FakeServer:
    """Duck-typed server: a registry and a stop() that records calls."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.metrics.counter("done").inc(4)
        self.telemetry = None
        self.alerts = None
        self.flight_recorder = None
        self.last_health = None
        self.stops = 0

    def stop(self):
        self.stops += 1


class TestSignalHandle:
    def test_install_and_uninstall_restore_previous(self):
        server = FakeServer()
        before = signal.getsignal(signal.SIGTERM)
        handle = install_signal_handlers(server, exit_on_signal=False)
        try:
            assert signal.getsignal(signal.SIGTERM) == handle._handler
        finally:
            handle.uninstall()
        assert signal.getsignal(signal.SIGTERM) == before

    def test_first_signal_bundles_then_drains(self, tmp_path):
        server = FakeServer()
        handle = install_signal_handlers(
            server, bundle_dir=str(tmp_path / "b"), exit_on_signal=False)
        try:
            handle._handler(signal.SIGTERM, None)
        finally:
            handle.uninstall()
        assert server.stops == 1
        assert handle.triggered == 1
        assert handle.bundle_path == str(tmp_path / "b")
        manifest = json.loads(
            (tmp_path / "b" / "manifest.json").read_text())
        assert manifest["reason"] == "signal:SIGTERM"
        metrics = json.loads((tmp_path / "b" / "metrics.json").read_text())
        assert metrics["metrics"]["done"] == 4.0

    def test_first_signal_uninstalls_handlers(self):
        server = FakeServer()
        before = signal.getsignal(signal.SIGINT)
        handle = install_signal_handlers(server, exit_on_signal=False)
        handle._handler(signal.SIGINT, None)
        # After a clean drain the previous handlers are back.
        assert signal.getsignal(signal.SIGINT) == before
        assert server.stops == 1

    def test_exit_on_signal_raises_systemexit_zero(self):
        server = FakeServer()
        handle = install_signal_handlers(server)
        try:
            with pytest.raises(SystemExit) as exc:
                handle._handler(signal.SIGTERM, None)
        finally:
            handle.uninstall()
        assert exc.value.code == 0
        assert server.stops == 1

    def test_second_signal_escalates(self):
        class SlowServer(FakeServer):
            def __init__(self, handle_box):
                super().__init__()
                self.handle_box = handle_box

            def stop(self):
                super().stop()
                # Operator presses Ctrl-C again mid-drain.
                with pytest.raises(SystemExit) as exc:
                    self.handle_box[0]._handler(signal.SIGINT, None)
                assert exc.value.code == 1

        box = []
        server = SlowServer(box)
        handle = install_signal_handlers(server)
        box.append(handle)
        try:
            with pytest.raises(SystemExit) as exc:
                handle._handler(signal.SIGTERM, None)
        finally:
            handle.uninstall()
        assert exc.value.code == 0
        assert handle.triggered == 2
        assert server.stops == 1

    def test_bundle_failure_does_not_block_drain(self, tmp_path):
        server = FakeServer()
        server.metrics = None  # nothing to bundle
        target = tmp_path / "file"
        target.write_text("not a directory")
        handle = install_signal_handlers(
            server, bundle_dir=str(target), exit_on_signal=False)
        try:
            handle._handler(signal.SIGTERM, None)
        finally:
            handle.uninstall()
        assert server.stops == 1
        assert handle.bundle_path is None

    def test_context_manager(self):
        server = FakeServer()
        before = signal.getsignal(signal.SIGTERM)
        with install_signal_handlers(server, exit_on_signal=False) as handle:
            assert signal.getsignal(signal.SIGTERM) == handle._handler
        assert signal.getsignal(signal.SIGTERM) == before

    def test_real_signal_delivery(self, tmp_path):
        # One real SIGTERM through the OS, handled on the main thread.
        server = FakeServer()
        handle = install_signal_handlers(
            server, bundle_dir=str(tmp_path / "b"), exit_on_signal=False)
        try:
            os.kill(os.getpid(), signal.SIGTERM)
            # CPython runs the handler at the next bytecode boundary.
            deadline = 1000
            while server.stops == 0 and deadline:
                deadline -= 1
        finally:
            handle.uninstall()
        assert server.stops == 1
        assert (tmp_path / "b" / "manifest.json").exists()
