"""Unit tests for the metrics instruments and registry export surface."""

import json

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               ensure_registry)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_labels_are_independent_series(self):
        counter = Counter("requests")
        counter.inc(shard=0)
        counter.inc(3, shard=1)
        assert counter.value(shard=0) == 1.0
        assert counter.value(shard=1) == 3.0
        assert counter.collect() == {
            "requests{shard=0}": 1.0, "requests{shard=1}": 3.0}

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("requests").inc(-1)


class TestGauge:
    def test_set_inc_value(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3.0


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        hist = Histogram("latency_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.9, 5.0, 50.0, 5000.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["buckets"] == {
            "le_1": 2, "le_10": 3, "le_100": 4, "le_inf": 5}
        assert snap["min"] == 0.5
        assert snap["max"] == 5000.0
        assert snap["mean"] == pytest.approx(5056.4 / 5)

    def test_boundary_value_lands_in_its_bucket(self):
        hist = Histogram("latency_ms", buckets=(1.0, 10.0))
        hist.observe(1.0)
        assert hist.snapshot()["buckets"]["le_1"] == 1

    def test_empty_snapshot_has_full_schema(self):
        # An unseen label set renders the same shape as a populated one:
        # telemetry/console consumers never branch on missing keys.
        hist = Histogram("latency_ms", buckets=(1.0, 5.0))
        empty = hist.snapshot()
        assert empty == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                         "mean": 0.0,
                         "buckets": {"le_1": 0, "le_5": 0, "le_inf": 0}}
        hist.observe(2.0, shard=0)
        assert set(hist.snapshot(shard=1)) == set(hist.snapshot(shard=0))
        assert hist.snapshot(shard=1)["buckets"] == \
            {"le_1": 0, "le_5": 0, "le_inf": 0}

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("latency_ms", buckets=())


class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_duplicate_collector_requires_replace(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", dict)
        with pytest.raises(ValueError):
            registry.register_collector("serve", dict)
        registry.register_collector("serve", lambda: {"x": 1}, replace=True)
        assert registry.export_dict()["serve"] == {"x": 1}

    def test_export_dict_combines_collectors_and_instruments(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", lambda: {"completed": 7})
        registry.counter("rejects").inc(2)
        out = registry.export_dict()
        assert out["serve"] == {"completed": 7}
        assert out["metrics"] == {"rejects": 2.0}
        json.dumps(out)

    def test_broken_collector_reported_in_band(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", lambda: {"ok": 1})

        def broken():
            raise RuntimeError("boom")

        registry.register_collector("calib", broken)
        out = registry.export_dict()
        assert out["serve"] == {"ok": 1}
        assert "RuntimeError" in out["calib"]["error"]

    def test_unregister_collector(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", dict)
        assert registry.components() == ["serve"]
        registry.unregister_collector("serve")
        assert registry.components() == []

    def test_export_text_flattens_numeric_leaves(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", lambda: {
            "completed": 7, "uptime_s": 1.5, "backend": "thread",
            "healthy": True, "shards": [2, 3]})
        text = registry.export_text()
        lines = set(text.strip().splitlines())
        assert "serve.completed 7" in lines
        assert "serve.uptime_s 1.5" in lines
        assert "serve.healthy 1" in lines       # bools render as ints
        assert "serve.shards.0 2" in lines
        assert not any("backend" in line for line in lines)  # strings skipped

    def test_export_text_empty_registry(self):
        assert MetricsRegistry().export_text() == ""


def test_ensure_registry():
    registry = MetricsRegistry()
    assert ensure_registry(registry) is registry
    assert isinstance(ensure_registry(None), MetricsRegistry)


class TestRegistryConcurrency:
    """The registry under fire: get-or-create + observe vs export."""

    def test_get_or_create_races_return_one_instrument(self):
        import threading

        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            for i in range(50):
                seen.append(registry.counter(f"shared_{i % 5}"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 8 threads x 50 asks collapse to exactly 5 instruments.
        assert len({id(c) for c in seen}) == 5

    def test_observe_vs_export_never_tears(self):
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("done")
        hist = registry.histogram("lat_ms", buckets=(1.0, 10.0))
        registry.register_collector("serve", lambda: {"alive": True})
        stop = threading.Event()
        errors = []

        def hammer():
            try:
                while not stop.is_set():
                    counter.inc(shard=0)
                    counter.inc(shard=1)
                    hist.observe(0.5)
                    hist.observe(50.0, shard=1)
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        def export():
            try:
                while not stop.is_set():
                    out = registry.export_dict()
                    # A torn histogram render would violate these: the
                    # bucket counts are cumulative and bounded by count.
                    for payload in out["metrics"].values():
                        if isinstance(payload, dict) and "buckets" in payload:
                            buckets = list(payload["buckets"].values())
                            assert buckets == sorted(buckets)
                            assert buckets[-1] == payload["count"]
                    json.dumps(out)
                    registry.export_text()
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = ([threading.Thread(target=hammer) for _ in range(4)]
                   + [threading.Thread(target=export) for _ in range(2)])
        for t in threads:
            t.start()
        import time
        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        # Counters only ever go up; the final export sees every inc.
        total = counter.value(shard=0) + counter.value(shard=1)
        assert total == hist.snapshot()["count"] + hist.snapshot(
            shard=1)["count"]

    def test_counter_reads_monotonic_across_exports(self):
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("done")
        stop = threading.Event()
        errors = []

        def hammer():
            while not stop.is_set():
                counter.inc()

        def watch():
            try:
                last = 0.0
                while not stop.is_set():
                    value = registry.export_dict()["metrics"]["done"]
                    assert value >= last
                    last = value
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=hammer),
                   threading.Thread(target=watch)]
        for t in threads:
            t.start()
        import time
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []

    def test_raising_collector_stays_in_band_under_concurrency(self):
        import threading

        registry = MetricsRegistry()
        registry.counter("ok").inc()
        registry.register_collector(
            "broken", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        outs = []

        def export():
            outs.append(registry.export_dict())

        threads = [threading.Thread(target=export) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outs) == 6
        for out in outs:
            assert "RuntimeError" in out["broken"]["error"]
            assert out["metrics"]["ok"] == 1.0
