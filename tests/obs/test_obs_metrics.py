"""Unit tests for the metrics instruments and registry export surface."""

import json

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               ensure_registry)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_labels_are_independent_series(self):
        counter = Counter("requests")
        counter.inc(shard=0)
        counter.inc(3, shard=1)
        assert counter.value(shard=0) == 1.0
        assert counter.value(shard=1) == 3.0
        assert counter.collect() == {
            "requests{shard=0}": 1.0, "requests{shard=1}": 3.0}

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("requests").inc(-1)


class TestGauge:
    def test_set_inc_value(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3.0


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        hist = Histogram("latency_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.9, 5.0, 50.0, 5000.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["buckets"] == {
            "le_1": 2, "le_10": 3, "le_100": 4, "le_inf": 5}
        assert snap["min"] == 0.5
        assert snap["max"] == 5000.0
        assert snap["mean"] == pytest.approx(5056.4 / 5)

    def test_boundary_value_lands_in_its_bucket(self):
        hist = Histogram("latency_ms", buckets=(1.0, 10.0))
        hist.observe(1.0)
        assert hist.snapshot()["buckets"]["le_1"] == 1

    def test_empty_snapshot(self):
        hist = Histogram("latency_ms")
        assert hist.snapshot() == {"count": 0, "sum": 0.0}

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("latency_ms", buckets=())


class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_duplicate_collector_requires_replace(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", dict)
        with pytest.raises(ValueError):
            registry.register_collector("serve", dict)
        registry.register_collector("serve", lambda: {"x": 1}, replace=True)
        assert registry.export_dict()["serve"] == {"x": 1}

    def test_export_dict_combines_collectors_and_instruments(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", lambda: {"completed": 7})
        registry.counter("rejects").inc(2)
        out = registry.export_dict()
        assert out["serve"] == {"completed": 7}
        assert out["metrics"] == {"rejects": 2.0}
        json.dumps(out)

    def test_broken_collector_reported_in_band(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", lambda: {"ok": 1})

        def broken():
            raise RuntimeError("boom")

        registry.register_collector("calib", broken)
        out = registry.export_dict()
        assert out["serve"] == {"ok": 1}
        assert "RuntimeError" in out["calib"]["error"]

    def test_unregister_collector(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", dict)
        assert registry.components() == ["serve"]
        registry.unregister_collector("serve")
        assert registry.components() == []

    def test_export_text_flattens_numeric_leaves(self):
        registry = MetricsRegistry()
        registry.register_collector("serve", lambda: {
            "completed": 7, "uptime_s": 1.5, "backend": "thread",
            "healthy": True, "shards": [2, 3]})
        text = registry.export_text()
        lines = set(text.strip().splitlines())
        assert "serve.completed 7" in lines
        assert "serve.uptime_s 1.5" in lines
        assert "serve.healthy 1" in lines       # bools render as ints
        assert "serve.shards.0 2" in lines
        assert not any("backend" in line for line in lines)  # strings skipped

    def test_export_text_empty_registry(self):
        assert MetricsRegistry().export_text() == ""


def test_ensure_registry():
    registry = MetricsRegistry()
    assert ensure_registry(registry) is registry
    assert isinstance(ensure_registry(None), MetricsRegistry)
