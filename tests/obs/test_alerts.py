"""Alert rules, SLO burn math, and edge-triggered evaluation."""

import json
import logging

import pytest

from repro.obs.alerts import (SLO, AlertManager, ErrorBudgetRule,
                              SeriesRule, default_rules)
from repro.obs.log import configure_event_log, remove_event_handler
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetryStore


def make_store(samples):
    """A store from {series: [(t, v), ...]} shorthand."""
    store = TelemetryStore()
    times = sorted({t for series in samples.values() for t, _ in series})
    for now in times:
        flat = {}
        for name, points in samples.items():
            for t, v in points:
                if t == now:
                    flat[name] = v
        if flat:
            store.ingest(flat, now=now)
    return store


class TestSLO:
    def test_error_budget(self):
        slo = SLO("availability", 0.999, window_s=300.0)
        assert slo.error_budget == pytest.approx(0.001)
        json.dumps(slo.to_dict())

    def test_objective_bounds(self):
        with pytest.raises(ValueError):
            SLO("x", 1.0)
        with pytest.raises(ValueError):
            SLO("x", 0.5, window_s=0.0)


class TestSeriesRule:
    def test_value_threshold(self):
        rule = SeriesRule("p99", "serve.p99_ms", 100.0, mode="value")
        store = make_store({"serve.p99_ms": [(0.0, 50.0), (1.0, 150.0)]})
        assert rule.active(store, now=1.0) is True
        store2 = make_store({"serve.p99_ms": [(0.0, 50.0)]})
        assert rule.active(store2, now=0.0) is False

    def test_missing_series_is_inactive(self):
        rule = SeriesRule("p99", "serve.p99_ms", 100.0)
        assert rule.active(TelemetryStore()) is None

    def test_nan_never_fires(self):
        rule = SeriesRule("p99", "serve.p99_ms", 100.0, mode="value")
        store = make_store({"serve.p99_ms": [(0.0, float("nan"))]})
        # NaN = "no latency data yet": inactive, not firing.
        assert rule.active(store, now=0.0) is None

    def test_delta_mode(self):
        rule = SeriesRule("deaths", "serve.worker_deaths", 0.0,
                          mode="delta", window_s=30.0)
        store = make_store({"serve.worker_deaths": [(0.0, 0.0), (1.0, 1.0)]})
        assert rule.active(store, now=1.0) is True

    def test_rate_mode_sums_series(self):
        rule = SeriesRule("backpressure",
                          ("serve.rejected", "serve.shed"), 50.0,
                          mode="rate", window_s=10.0)
        store = make_store({
            "serve.rejected": [(0.0, 0.0), (10.0, 400.0)],
            "serve.shed": [(0.0, 0.0), (10.0, 300.0)],
        })
        # 700 events over 10 s = 70/s > 50/s.
        assert rule.active(store, now=10.0) is True
        assert rule.observed(store, now=10.0) == pytest.approx(70.0)

    def test_detail_is_json_safe(self):
        rule = SeriesRule("deaths", "serve.worker_deaths", 0.0,
                          mode="delta")
        store = make_store({"serve.worker_deaths": [(0.0, 0.0), (1.0, 2.0)]})
        json.dumps(rule.detail(store, now=1.0))
        json.dumps(rule.to_dict())

    def test_validation(self):
        with pytest.raises(ValueError):
            SeriesRule("x", "s", 1.0, mode="median")
        with pytest.raises(ValueError):
            SeriesRule("x", "s", 1.0, op="!=")
        with pytest.raises(ValueError):
            SeriesRule("x", (), 1.0)
        with pytest.raises(ValueError):
            SeriesRule("x", "s", 1.0, window_s=0.0)


class TestErrorBudgetRule:
    def rule(self, **kwargs):
        options = {"burn_factor": 10.0, "min_events": 20}
        options.update(kwargs)
        return ErrorBudgetRule(
            "availability_burn", SLO("availability", 0.999, window_s=300.0),
            error_series=("serve.rejected", "serve.shed"),
            total_series="serve.completed", **options)

    def test_burn_fires_on_fast_budget_consumption(self):
        # 5% of requests erroring vs a 0.1% budget = 50x burn.
        store = make_store({
            "serve.rejected": [(0.0, 0.0), (100.0, 50.0)],
            "serve.shed": [(0.0, 0.0), (100.0, 0.0)],
            "serve.completed": [(0.0, 0.0), (100.0, 950.0)],
        })
        rule = self.rule()
        assert rule.burn(store, now=100.0) == pytest.approx(50.0)
        assert rule.active(store, now=100.0) is True

    def test_healthy_traffic_does_not_fire(self):
        store = make_store({
            "serve.rejected": [(0.0, 0.0), (100.0, 0.0)],
            "serve.shed": [(0.0, 0.0), (100.0, 0.0)],
            "serve.completed": [(0.0, 0.0), (100.0, 1000.0)],
        })
        assert self.rule().active(store, now=100.0) is False

    def test_tiny_denominator_suppressed(self):
        # 1 reject of 3 events would read as a 333x burn; min_events
        # keeps the rule quiet until there is real evidence.
        store = make_store({
            "serve.rejected": [(0.0, 0.0), (100.0, 1.0)],
            "serve.shed": [(0.0, 0.0), (100.0, 0.0)],
            "serve.completed": [(0.0, 0.0), (100.0, 2.0)],
        })
        assert self.rule().active(store, now=100.0) is None

    def test_missing_series_inactive(self):
        assert self.rule().active(TelemetryStore()) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            self.rule(burn_factor=0.0)


class TestAlertManagerEdgeTriggering:
    def test_fire_once_then_resolve_once(self, tmp_path):
        rule = SeriesRule("deaths", "serve.worker_deaths", 0.0,
                          mode="delta", window_s=5.0)
        manager = AlertManager([rule])
        store = TelemetryStore()
        log_path = tmp_path / "events.jsonl"
        handler = configure_event_log(path=str(log_path))
        try:
            store.ingest({"serve.worker_deaths": 0.0}, now=0.0)
            assert manager.evaluate(store, now=0.0) == []
            # Death at t=1; delta > 0 holds for every sample in the
            # window — but only the first evaluation transitions.
            for t in (1.0, 2.0, 3.0):
                store.ingest({"serve.worker_deaths": 1.0}, now=t)
                manager.evaluate(store, now=t)
            state = manager.state("deaths")
            assert state.firing and state.fired_count == 1
            # The death leaves the window: one resolve transition.
            for t in (7.0, 8.0):
                store.ingest({"serve.worker_deaths": 1.0}, now=t)
                manager.evaluate(store, now=t)
            assert not state.firing
            assert state.fired_count == 1 and state.resolved_count == 1
        finally:
            remove_event_handler(handler)
        events = [json.loads(line)
                  for line in log_path.read_text().splitlines()]
        alert_events = [e for e in events if e["component"] == "alerts"]
        assert [e["event"] for e in alert_events] == [
            "alert_firing", "alert_resolved"]
        assert alert_events[0]["rule"] == "deaths"
        assert alert_events[0]["level"] == "warning"

    def test_on_fire_callback_runs_once_per_episode(self):
        fired = []
        rule = SeriesRule("deaths", "serve.worker_deaths", 0.0,
                          mode="delta", window_s=5.0, capture_bundle=True)
        manager = AlertManager([rule], on_fire=fired.append)
        store = TelemetryStore()
        store.ingest({"serve.worker_deaths": 0.0}, now=0.0)
        for t in (1.0, 2.0, 3.0):
            store.ingest({"serve.worker_deaths": 1.0}, now=t)
            manager.evaluate(store, now=t)
        assert len(fired) == 1
        assert fired[0].rule is rule

    def test_broken_callback_is_counted_not_raised(self):
        def explode(state):
            raise RuntimeError("bundle writer died")

        rule = SeriesRule("deaths", "serve.worker_deaths", 0.0,
                          mode="delta", window_s=5.0)
        manager = AlertManager([rule], on_fire=explode)
        store = TelemetryStore()
        store.ingest({"serve.worker_deaths": 0.0}, now=0.0)
        store.ingest({"serve.worker_deaths": 1.0}, now=1.0)
        manager.evaluate(store, now=1.0)
        assert manager.state("deaths").firing
        assert manager.callback_errors == 1

    def test_gauge_and_collector_exports(self):
        registry = MetricsRegistry()
        rule = SeriesRule("p99", "serve.p99_ms", 100.0, mode="value")
        manager = AlertManager([rule], registry=registry)
        store = TelemetryStore()
        store.ingest({"serve.p99_ms": 500.0}, now=0.0)
        manager.evaluate(store, now=0.0)
        out = registry.export_dict()
        assert out["metrics"]["alerts_active"] == 1.0
        assert out["alerts"]["active"] == 1
        assert out["alerts"]["fired_total"] == 1
        assert out["alerts"]["rules"]["p99"]["firing"] is True
        json.dumps(out)
        store.ingest({"serve.p99_ms": 10.0}, now=1.0)
        manager.evaluate(store, now=1.0)
        assert registry.export_dict()["metrics"]["alerts_active"] == 0.0

    def test_broken_rule_is_inert(self):
        class BrokenRule(SeriesRule):
            def active(self, store, now=None):
                raise RuntimeError("boom")

        broken = BrokenRule("broken", "x", 0.0)
        ok = SeriesRule("ok", "serve.p99_ms", 100.0, mode="value")
        manager = AlertManager([broken, ok])
        store = TelemetryStore()
        store.ingest({"serve.p99_ms": 500.0}, now=0.0)
        manager.evaluate(store, now=0.0)
        assert manager.state("ok").firing
        assert not manager.state("broken").firing

    def test_duplicate_rule_names_rejected(self):
        rules = [SeriesRule("x", "a", 0.0), SeriesRule("x", "b", 0.0)]
        with pytest.raises(ValueError):
            AlertManager(rules)


class TestDefaultRules:
    def test_shapes(self):
        rules = default_rules()
        names = {rule.name for rule in rules}
        assert names == {"worker_death", "backpressure", "p99_breach",
                         "swap_storm", "availability_burn"}
        by_name = {rule.name: rule for rule in rules}
        assert by_name["worker_death"].capture_bundle
        assert by_name["worker_death"].severity == "critical"

    def test_quiet_on_healthy_traffic(self):
        # A server doing brisk, clean traffic must not trip anything.
        manager = AlertManager(default_rules())
        store = TelemetryStore()
        for t in range(20):
            store.ingest({
                "serve.completed": 100.0 * t,
                "serve.traces_done": 100.0 * t,
                "serve.rejected": 0.0,
                "serve.shed": 0.0,
                "serve.worker_deaths": 0.0,
                "serve.swaps": 1.0 if t > 10 else 0.0,  # one hot swap: fine
                "serve.p99_ms": 4.0,
            }, now=float(t))
            manager.evaluate(store, now=float(t))
        assert manager.total_fired() == 0
        assert manager.active() == []

    def test_worker_death_fires(self):
        manager = AlertManager(default_rules())
        store = TelemetryStore()
        store.ingest({"serve.worker_deaths": 0.0}, now=0.0)
        manager.evaluate(store, now=0.0)
        store.ingest({"serve.worker_deaths": 1.0}, now=1.0)
        manager.evaluate(store, now=1.0)
        assert manager.state("worker_death").firing

    def test_events_silent_without_sink(self, caplog):
        # Transition with no configured sink: no records propagate.
        manager = AlertManager(default_rules())
        store = TelemetryStore()
        store.ingest({"serve.worker_deaths": 0.0}, now=0.0)
        manager.evaluate(store, now=0.0)
        with caplog.at_level(logging.DEBUG):
            store.ingest({"serve.worker_deaths": 1.0}, now=1.0)
            manager.evaluate(store, now=1.0)
        assert not [r for r in caplog.records
                    if r.name.startswith("repro.events")]
