"""Debug bundles: capture, partial capture, load, and the CLI."""

import json
import os
import subprocess
import sys

import pytest

from repro.obs.bundle import load_bundle, write_debug_bundle
from repro.obs.log import configure_event_log, log_event, remove_event_handler
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TelemetryStore
from repro.obs.trace import FlightRecorder, TraceContext


def make_sources():
    registry = MetricsRegistry()
    registry.counter("done").inc(7)
    store = TelemetryStore()
    store.ingest({"serve.completed": 10.0}, now=0.0)
    store.ingest({"serve.completed": 30.0}, now=1.0)
    recorder = FlightRecorder()
    trace = TraceContext(1, started_at=0.0)
    trace.add_span("inference", 0.0, 0.002)
    trace.finish(0.003)
    recorder.record(trace)
    return registry, store, recorder


class TestWriteDebugBundle:
    def test_explicit_sources(self, tmp_path):
        registry, store, recorder = make_sources()
        path = write_debug_bundle(str(tmp_path / "b"), registry=registry,
                                  telemetry=store,
                                  flight_recorder=recorder,
                                  reason="test")
        files = sorted(os.listdir(path))
        assert files == ["flight_recorder.json", "manifest.json",
                         "metrics.json", "telemetry.json"]
        manifest = json.loads((tmp_path / "b" / "manifest.json").read_text())
        assert manifest["reason"] == "test"
        assert manifest["pid"] == os.getpid()
        assert sorted(manifest["files"]) == [
            "flight_recorder.json", "metrics.json", "telemetry.json"]
        metrics = json.loads((tmp_path / "b" / "metrics.json").read_text())
        assert metrics["metrics"]["done"] == 7.0

    def test_partial_sources_never_fatal(self, tmp_path):
        class Broken:
            def dump(self):
                raise RuntimeError("mid-failure")

        path = write_debug_bundle(str(tmp_path / "b"),
                                  telemetry=Broken())
        payload = json.loads(
            (tmp_path / "b" / "telemetry.json").read_text())
        assert "RuntimeError" in payload["error"]
        assert os.path.exists(os.path.join(path, "manifest.json"))

    def test_event_log_tail_captured(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        handler = configure_event_log(path=str(log_path))
        try:
            for i in range(5):
                log_event("serve", "tick", n=i)
            write_debug_bundle(str(tmp_path / "b"), event_tail=3)
        finally:
            remove_event_handler(handler)
        tail = (tmp_path / "b" / "events_tail.jsonl").read_text()
        events = [json.loads(line) for line in tail.splitlines()]
        # The bundle-written event itself may land in the tail; the last
        # three ticks before the capture must be there.
        ticks = [e for e in events if e["event"] == "tick"]
        assert [e["n"] for e in ticks] == [2, 3, 4]

    def test_duck_typed_server(self, tmp_path):
        registry, store, recorder = make_sources()

        class FakeSampler:
            def __init__(self):
                self.store = store

        class FakeServer:
            metrics = registry
            telemetry = FakeSampler()
            alerts = None
            flight_recorder = recorder
            last_health = {"healthy": True, "shards": []}
            n_shards = 2
            stopping = False

        write_debug_bundle(str(tmp_path / "b"), FakeServer())
        loaded = load_bundle(str(tmp_path / "b"))
        assert loaded["health"]["healthy"] is True
        assert loaded["manifest"]["server"]["type"] == "FakeServer"
        assert loaded["telemetry"]["series"]["serve.completed"]


class TestLoadBundle:
    def test_roundtrip(self, tmp_path):
        registry, store, recorder = make_sources()
        write_debug_bundle(str(tmp_path / "b"), registry=registry,
                           telemetry=store, flight_recorder=recorder)
        loaded = load_bundle(str(tmp_path / "b"))
        assert loaded["metrics"]["metrics"]["done"] == 7.0
        clone = TelemetryStore.from_dump(loaded["telemetry"])
        assert clone.latest("serve.completed") == 30.0
        assert loaded["flight_recorder"]["slowest"][0]["trace_id"] == 1

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(str(tmp_path / "nope"))

    def test_missing_files_are_absent_keys(self, tmp_path):
        write_debug_bundle(str(tmp_path / "b"))
        loaded = load_bundle(str(tmp_path / "b"))
        assert "manifest" in loaded
        assert "metrics" not in loaded
        assert "events_tail" not in loaded


class TestBundleCli:
    def test_cli_writes_a_bundle(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = ("src" + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else "src")
        out = subprocess.run(
            [sys.executable, "-m", "repro.obs.bundle",
             str(tmp_path / "b")],
            capture_output=True, text=True, env=env, timeout=120)
        assert out.returncode == 0, out.stderr
        assert "found in sys.modules" not in out.stderr
        manifest = json.loads((tmp_path / "b" / "manifest.json").read_text())
        assert manifest["reason"] == "cli"
