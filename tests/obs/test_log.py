"""Unit tests for the structured JSONL event log."""

import io
import json
import logging

import pytest

from repro.obs.log import (EVENT_LOGGER_ROOT, configure_event_log, event_logger,
                           log_event, remove_event_handler)


@pytest.fixture
def sink():
    """A StringIO JSONL sink attached for the test, detached after."""
    stream = io.StringIO()
    handler = configure_event_log(stream=stream, level=logging.DEBUG)
    yield stream
    remove_event_handler(handler)


def _events(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_silent_without_configuration():
    # Must not raise, must not propagate to the logging root.
    log_event("serve", "server_start", shards=2)
    root = logging.getLogger(EVENT_LOGGER_ROOT)
    assert root.propagate is False


def test_event_logger_namespacing():
    assert event_logger("serve").name == f"{EVENT_LOGGER_ROOT}.serve"


def test_events_are_one_json_object_per_line(sink):
    log_event("serve", "server_start", shards=2, backend="thread")
    log_event("worker", "worker_death", level=logging.WARNING,
              shard=1, exit_code=-9)
    first, second = _events(sink)
    assert first["component"] == "serve"
    assert first["event"] == "server_start"
    assert first["shards"] == 2
    assert first["level"] == "info"
    assert isinstance(first["ts"], float)
    assert second == {**second, "component": "worker", "exit_code": -9,
                      "level": "warning"}


def test_level_filtering():
    stream = io.StringIO()
    handler = configure_event_log(stream=stream, level=logging.WARNING)
    try:
        log_event("serve", "chatter", level=logging.INFO)
        log_event("serve", "problem", level=logging.WARNING)
        events = _events(stream)
        assert [e["event"] for e in events] == ["problem"]
    finally:
        remove_event_handler(handler)


def test_reserved_keys_not_clobbered_by_fields(sink):
    log_event("serve", "oddball", ts=0)
    [event] = _events(sink)
    assert event["ts"] != 0     # payload wins over same-named fields


def test_non_json_fields_stringified(sink):
    log_event("serve", "detail", error=ValueError("bad"))
    [event] = _events(sink)
    assert "bad" in event["error"]


def test_file_sink(tmp_path):
    path = tmp_path / "events.jsonl"
    handler = configure_event_log(path=str(path))
    try:
        log_event("calib", "swap_promoted", shard=0, version=2)
    finally:
        remove_event_handler(handler)
    [event] = [json.loads(line)
               for line in path.read_text().splitlines()]
    assert event["event"] == "swap_promoted"
    assert event["version"] == 2


def test_path_and_stream_mutually_exclusive(tmp_path):
    with pytest.raises(ValueError):
        configure_event_log(path=str(tmp_path / "x.jsonl"),
                            stream=io.StringIO())
