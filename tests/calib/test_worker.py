"""Background worker tests: probe scheduling, alarm queues, async repair."""

import time

import numpy as np
import pytest

from repro.calib import (CalibrationWorker, DriftAlarm, DriftingSimulator,
                         DriftSchedule, FidelityMonitor, ParameterDrift,
                         ProbeScheduler, Recalibrator)
from repro.experiments.drift_recovery import drifting_two_qubit_device
from repro.serve import build_sharded_server, closed_loop


def make_simulator(magnitude=0.0, start_shot=0, qubit=1, kind="step",
                   period_shots=1000.0):
    schedule = DriftSchedule([
        ParameterDrift(parameter="iq_angle_rad", qubit=qubit, kind=kind,
                       magnitude=magnitude, period_shots=period_shots,
                       start_shot=start_shot),
    ]) if magnitude else DriftSchedule([])
    return DriftingSimulator(drifting_two_qubit_device(), schedule)


def make_server(simulator, seed=0):
    """A two-shard 'mf' server calibrated on the simulator's current truth."""
    calib = simulator.calibration_set(100, np.random.default_rng(seed))
    train, val, _ = calib.split(np.random.default_rng(seed + 1), 0.6, 0.15)
    return build_sharded_server(("mf",), train, val, n_shards=2,
                                max_batch_traces=128,
                                max_wait_ms=0.5).start()


def dummy_alarm(detail="forced"):
    return DriftAlarm(monitor="test", statistic=1.0, threshold=0.0,
                      detail=detail)


class TestProbeScheduler:
    def test_duty_cycle_accounting(self):
        simulator = make_simulator()
        server = make_server(simulator)
        probes = ProbeScheduler(server, simulator, duty_cycle=0.1,
                                probe_batch=10,
                                rng=np.random.default_rng(3))
        # No traffic yet: nothing owed, nothing probed.
        assert probes.poll() == []
        assert server.stats.probes == 0

        traffic = simulator.generate_traffic(100, np.random.default_rng(4))
        server.predict(traffic.demod)
        probes.poll()               # 100 traces * 0.1 = 10 owed -> 1 batch
        assert server.stats.probes == 1
        assert server.stats.probe_traces == 10
        # The probe batch itself must not owe further probes.
        assert probes.poll() == []
        assert server.stats.probes == 1
        assert probes.owed_traces() < 10
        server.stop()

    def test_routes_outcomes_to_per_shard_monitors(self):
        simulator = make_simulator()
        server = make_server(simulator)
        probes = ProbeScheduler(server, simulator, duty_cycle=0.5,
                                probe_batch=20,
                                rng=np.random.default_rng(3))
        traffic = simulator.generate_traffic(40, np.random.default_rng(4))
        server.predict(traffic.demod)
        probes.poll()
        for shard_index in (0, 1):
            assert probes.monitors[shard_index].n_observations == 20
        # Enough evidence -> the first trusted estimate became baseline.
        probes2 = ProbeScheduler(server, simulator, duty_cycle=0.5,
                                 probe_batch=20,
                                 rng=np.random.default_rng(5))
        for _ in range(4):
            traffic = simulator.generate_traffic(40,
                                                 np.random.default_rng(6))
            server.predict(traffic.demod)
            probes2.poll()
        assert all(m.baseline is not None
                   for m in probes2.monitors.values())
        server.stop()

    def test_validation(self):
        simulator = make_simulator()
        server = make_server(simulator)
        with pytest.raises(ValueError, match="duty_cycle"):
            ProbeScheduler(server, simulator, duty_cycle=0.0)
        with pytest.raises(ValueError, match="probe_batch"):
            ProbeScheduler(server, simulator, probe_batch=0)
        with pytest.raises(ValueError, match="unknown design"):
            ProbeScheduler(server, simulator, design="mf-rmf-nn")
        with pytest.raises(ValueError, match="cover every shard"):
            ProbeScheduler(server, simulator,
                           monitors={0: FidelityMonitor()})
        server.stop()


class TestCalibrationWorkerLifecycle:
    def make_worker(self, server, simulator, **kwargs):
        recalibrator = Recalibrator(server, calibration_shots_per_state=60)
        return CalibrationWorker(server, recalibrator, simulator,
                                 poll_interval_s=0.005, **kwargs)

    def test_start_stop_join(self):
        simulator = make_simulator()
        server = make_server(simulator)
        worker = self.make_worker(server, simulator)
        assert not worker.running
        worker.start()
        assert worker.running
        worker.start()              # idempotent
        worker.stop()
        assert not worker.running
        worker.stop()               # idempotent
        with pytest.raises(RuntimeError, match="restarted"):
            worker.start()
        server.stop()

    def test_context_manager(self):
        simulator = make_simulator()
        server = make_server(simulator)
        with self.make_worker(server, simulator) as worker:
            assert worker.running
        assert not worker.running
        server.stop()

    def test_validation(self):
        simulator = make_simulator()
        server = make_server(simulator)
        other = make_server(simulator, seed=7)
        recalibrator = Recalibrator(other, calibration_shots_per_state=60)
        with pytest.raises(ValueError, match="different server"):
            CalibrationWorker(server, recalibrator, simulator)
        recalibrator = Recalibrator(server, calibration_shots_per_state=60)
        with pytest.raises(ValueError, match="poll_interval_s"):
            CalibrationWorker(server, recalibrator, simulator,
                              poll_interval_s=0)
        with pytest.raises(ValueError, match="cooldown_s"):
            CalibrationWorker(server, recalibrator, simulator,
                              cooldown_s=-1)
        other.stop()
        server.stop()

    def test_cooldown_suppresses_but_counts(self):
        # Deterministic single-tick driving: no thread, direct _tick calls.
        simulator = make_simulator()
        server = make_server(simulator)
        worker = self.make_worker(server, simulator, cooldown_s=60.0,
                                  score_monitoring=False)
        worker._enqueue_alarm(0, dummy_alarm())
        worker._tick()
        assert worker.stats.refits == 1
        assert worker.stats.alarms_suppressed == 0
        # A second alarm inside the (long) cooldown is counted suppressed,
        # never silently dropped, and triggers no refit.
        worker._enqueue_alarm(0, dummy_alarm("second"))
        worker._tick()
        assert worker.stats.refits == 1
        assert worker.stats.alarms_suppressed == 1
        server.stop()

    def test_suppressed_sticky_alarm_requeues_after_cooldown(self):
        # Regression: suppressing a sticky alarm must forget the dedup
        # entry, or the monitor's identical re-reports are deduped against
        # the suppressed object forever and the shard is never repaired.
        simulator = make_simulator()
        server = make_server(simulator)
        worker = self.make_worker(server, simulator, cooldown_s=60.0,
                                  score_monitoring=False)
        worker._enqueue_alarm(0, dummy_alarm())
        worker._tick()                       # refit; cooldown starts
        sticky = dummy_alarm("sticky")
        worker._enqueue_alarm(0, sticky)
        worker._tick()                       # suppressed
        worker._enqueue_alarm(0, sticky)     # the monitor re-reports it
        assert len(worker._alarms[0]) == 1   # must land in the queue again
        worker._cooldown_until[0] = 0.0      # cooldown over
        worker._tick()
        assert worker.stats.refits == 2
        server.stop()

    def test_sticky_alarm_enqueued_once(self):
        simulator = make_simulator()
        server = make_server(simulator)
        worker = self.make_worker(server, simulator,
                                  score_monitoring=False)
        alarm = dummy_alarm()
        worker._enqueue_alarm(1, alarm)
        worker._enqueue_alarm(1, alarm)      # sticky re-report
        assert len(worker._alarms[1]) == 1
        server.stop()


class TestBackgroundRepair:
    def test_repairs_only_the_drifting_shard(self):
        # Step-rotate qubit 1 (shard 1) after initial calibration; run
        # traffic from the main thread while the worker watches.
        simulator = make_simulator(magnitude=2.0, start_shot=300)
        server = make_server(simulator)
        recalibrator = Recalibrator(server, calibration_shots_per_state=80,
                                    min_improvement=0.005)
        probes = ProbeScheduler(server, simulator, duty_cycle=0.1,
                                probe_batch=20,
                                rng=np.random.default_rng(11))
        worker = CalibrationWorker(server, recalibrator, simulator,
                                   probes=probes, poll_interval_s=0.002,
                                   cooldown_s=0.2, warmup_batches=4,
                                   rng=np.random.default_rng(12)).start()
        rng = np.random.default_rng(13)
        failures = 0
        deadline = time.monotonic() + 30.0
        while worker.promotions == 0 and time.monotonic() < deadline:
            traffic = simulator.generate_traffic(150, rng)
            try:
                server.predict(traffic.demod, timeout=30)
            except Exception:  # noqa: BLE001 — count, keep the run honest
                failures += 1
            time.sleep(0.003)
        worker.stop()

        assert worker.promotions >= 1
        assert failures == 0
        # Surgical repair: only the drifting shard's version bumped.
        versions = server.stats.model_versions
        assert versions.get(1, 0) >= 1
        assert versions.get(0, 0) == 0
        assert all(r.shard_index == 1 for r in worker.records
                   if r.report is not None and r.report.promoted)
        assert worker.stats.refit_errors == 0
        assert worker.stats.tick_errors == 0
        # The repaired shard actually serves well again.
        probe = simulator.calibration_set(30, np.random.default_rng(14))
        bits = server.predict(probe.demod).bits_for("mf")
        assert np.mean(bits[:, 1] == probe.labels[:, 1]) > 0.85
        server.stop()

    def test_concurrent_swaps_under_loadgen_stress(self):
        # The satellite stress test: the worker promotes while closed-loop
        # traffic hammers the server. Zero request failures, and the
        # drifting shard's model versions climb strictly monotonically.
        simulator = make_simulator(magnitude=2.5, kind="linear",
                                   period_shots=8000.0)
        server = make_server(simulator)
        test_set = simulator.calibration_set(40, np.random.default_rng(20))
        recalibrator = Recalibrator(server, calibration_shots_per_state=60,
                                    min_improvement=0.0)
        worker = CalibrationWorker(server, recalibrator, simulator,
                                   poll_interval_s=0.002, cooldown_s=0.0,
                                   score_monitoring=False,
                                   rng=np.random.default_rng(21)).start()
        total_failed = 0
        for round_index in range(4):
            # Advance the drift, then alarm the drifting shard while the
            # load generator keeps traffic in flight.
            simulator.shot += 2000
            worker._enqueue_alarm(1, dummy_alarm(f"round {round_index}"))
            report = closed_loop(server, test_set, n_clients=4,
                                 requests_per_client=25,
                                 traces_per_request=2,
                                 seed=22 + round_index)
            total_failed += report.failed
        deadline = time.monotonic() + 20.0
        while (len(worker.records) < 4
               and time.monotonic() < deadline):
            time.sleep(0.01)
        worker.stop()

        assert total_failed == 0
        assert server.stats.failed == 0
        assert worker.stats.refit_errors == 0
        # Under a steadily drifting truth every refit beats the stale
        # incumbent: multiple promotions, strictly increasing versions.
        promoted_versions = [r.report.model_version for r in worker.records
                             if r.report is not None and r.report.promoted]
        assert len(promoted_versions) >= 2
        assert promoted_versions == sorted(promoted_versions)
        assert len(set(promoted_versions)) == len(promoted_versions)
        assert server.stats.model_versions.get(1, 0) == len(promoted_versions)
        assert server.stats.model_versions.get(0, 0) == 0
        server.stop()
