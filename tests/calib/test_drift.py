"""Drift schedule and drifting-simulator tests."""

import numpy as np
import pytest

from repro.calib import DriftingSimulator, DriftSchedule, ParameterDrift
from repro.readout import single_qubit_device


def drift(**kwargs):
    defaults = dict(parameter="iq_angle_rad", kind="linear", magnitude=1.0,
                    period_shots=100.0)
    defaults.update(kwargs)
    return ParameterDrift(**defaults)


class TestWaveforms:
    def test_linear_ramps_then_holds(self):
        d = drift(kind="linear", magnitude=2.0, period_shots=100,
                  start_shot=50)
        assert d.offset_at(0) == 0.0
        assert d.offset_at(50) == 0.0
        assert d.offset_at(100) == pytest.approx(1.0)
        assert d.offset_at(150) == pytest.approx(2.0)
        assert d.offset_at(10_000) == pytest.approx(2.0)   # holds at cap

    def test_step_jumps_at_onset(self):
        d = drift(kind="step", magnitude=0.5, start_shot=10)
        assert d.offset_at(9.99) == 0.0
        assert d.offset_at(10) == 0.5
        assert d.offset_at(1e6) == 0.5

    def test_sinusoidal_oscillates(self):
        d = drift(kind="sinusoidal", magnitude=0.3, period_shots=100,
                  start_shot=0)
        assert d.offset_at(0) == pytest.approx(0.0)
        assert d.offset_at(25) == pytest.approx(0.3)
        assert d.offset_at(75) == pytest.approx(-0.3)

    def test_random_walk_deterministic_and_diffusive(self):
        a = drift(kind="random_walk", magnitude=0.1, period_shots=10, seed=7)
        b = drift(kind="random_walk", magnitude=0.1, period_shots=10, seed=7)
        other = drift(kind="random_walk", magnitude=0.1, period_shots=10,
                      seed=8)
        values_a = [a.offset_at(s) for s in range(0, 500, 10)]
        values_b = [b.offset_at(s) for s in range(0, 500, 10)]
        assert values_a == values_b              # pure function of the seed
        assert values_a != [other.offset_at(s) for s in range(0, 500, 10)]
        assert values_a[0] == 0.0
        assert len(set(values_a)) > 10           # actually walks

    def test_random_walk_constant_within_a_period(self):
        d = drift(kind="random_walk", magnitude=0.1, period_shots=10, seed=1)
        assert d.offset_at(10) == d.offset_at(19)
        assert d.offset_at(10) != d.offset_at(20)

    def test_validation(self):
        with pytest.raises(ValueError, match="parameter"):
            drift(parameter="frequency")
        with pytest.raises(ValueError, match="kind"):
            drift(kind="quadratic")
        with pytest.raises(ValueError, match="period_shots"):
            drift(period_shots=0)
        with pytest.raises(ValueError, match="qubit must be None"):
            drift(parameter="noise_scale", qubit=0)


class TestDeviceApplication:
    def test_angle_rotation_preserves_separation(self):
        device = single_qubit_device()
        schedule = DriftSchedule([drift(kind="step", magnitude=1.2,
                                        parameter="iq_angle_rad", qubit=0)])
        drifted = schedule.device_at(device, 10)
        q0, d0 = device.qubits[0], drifted.qubits[0]
        assert d0.iq_ground == q0.iq_ground
        assert d0.separation == pytest.approx(q0.separation)
        rotated = (d0.iq_excited - d0.iq_ground) / (q0.iq_excited - q0.iq_ground)
        assert np.angle(rotated) == pytest.approx(1.2)

    def test_separation_scaling(self):
        device = single_qubit_device()
        schedule = DriftSchedule([drift(kind="step", magnitude=-0.5,
                                        parameter="separation_scale")])
        drifted = schedule.device_at(device, 1)
        assert drifted.qubits[0].separation == pytest.approx(
            0.5 * device.qubits[0].separation)

    def test_t1_noise_and_freq(self):
        device = single_qubit_device()
        schedule = DriftSchedule([
            drift(kind="step", magnitude=-0.4, parameter="t1_scale"),
            drift(kind="step", magnitude=0.5, parameter="noise_scale",
                  qubit=None),
            drift(kind="step", magnitude=2.0, parameter="freq_offset_mhz"),
        ])
        drifted = schedule.device_at(device, 1)
        assert drifted.qubits[0].t1_us == pytest.approx(
            0.6 * device.qubits[0].t1_us)
        assert drifted.noise_std == pytest.approx(1.5 * device.noise_std)
        assert drifted.qubits[0].intermediate_freq_mhz == pytest.approx(
            device.qubits[0].intermediate_freq_mhz + 2.0)

    def test_overlapping_drifts_sum(self):
        device = single_qubit_device()
        schedule = DriftSchedule([
            drift(kind="step", magnitude=0.4, parameter="iq_angle_rad"),
            drift(kind="step", magnitude=0.3, parameter="iq_angle_rad",
                  qubit=0),
        ])
        drifted = schedule.device_at(device, 1)
        rotated = ((drifted.qubits[0].iq_excited - drifted.qubits[0].iq_ground)
                   / (device.qubits[0].iq_excited - device.qubits[0].iq_ground))
        assert np.angle(rotated) == pytest.approx(0.7)

    def test_identity_before_onset(self):
        device = single_qubit_device()
        schedule = DriftSchedule([drift(start_shot=1000)])
        assert schedule.device_at(device, 500) is device

    def test_out_of_range_qubit_rejected(self):
        device = single_qubit_device()
        schedule = DriftSchedule([drift(kind="step", qubit=3)])
        with pytest.raises(ValueError, match="qubit 3"):
            schedule.device_at(device, 1)


class TestDriftingSimulator:
    @pytest.fixture
    def simulator(self):
        schedule = DriftSchedule([drift(kind="step", magnitude=2.0,
                                        start_shot=100)])
        return DriftingSimulator(single_qubit_device(), schedule)

    def test_traffic_advances_the_clock(self, simulator):
        rng = np.random.default_rng(0)
        batch = simulator.generate_traffic(60, rng)
        assert batch.n_traces == 60
        assert simulator.shot == 60
        assert batch.labels.shape == (60, 1)
        # Shuffled uniform traffic contains both prepared states.
        assert set(np.unique(batch.labels)) == {0, 1}

    def test_calibration_set_freezes_the_clock(self, simulator):
        rng = np.random.default_rng(0)
        simulator.generate_traffic(60, rng)
        calib = simulator.calibration_set(20, rng)
        assert simulator.shot == 60
        assert calib.n_traces == 40          # 20 per basis state x 2

    def test_traffic_reflects_drift(self, simulator):
        rng = np.random.default_rng(0)
        simulator.generate_traffic(100, rng)        # cross the step onset
        drifted = simulator.device_now().qubits[0]
        clean = simulator.base_device.qubits[0]
        assert drifted.iq_excited != clean.iq_excited

    def test_empty_traffic_rejected(self, simulator):
        with pytest.raises(ValueError, match="n_traces"):
            simulator.generate_traffic(0, np.random.default_rng(0))
