"""Streaming drift-monitor tests: fidelity windows and Page-Hinkley."""

import numpy as np
import pytest

from repro.calib import (FidelityMonitor, PageHinkley, ScoreDriftMonitor)


class TestFidelityMonitor:
    def make(self, **kwargs):
        defaults = dict(window=100, drop_tolerance=0.05, min_observations=20)
        defaults.update(kwargs)
        return FidelityMonitor(**defaults)

    def test_no_alarm_on_healthy_stream(self):
        monitor = self.make()
        monitor.set_baseline(0.95)
        rng = np.random.default_rng(0)
        for _ in range(20):
            truth = rng.integers(0, 2, size=(10, 2))
            predicted = truth.copy()
            predicted[rng.random(10) < 0.03] ^= 1   # ~97% fidelity
            assert monitor.observe(predicted, truth) is None

    def test_alarms_on_degradation(self):
        monitor = self.make()
        monitor.set_baseline(0.97)
        rng = np.random.default_rng(0)
        truth = rng.integers(0, 2, size=(60, 2))
        predicted = truth.copy()
        predicted[rng.random(60) < 0.5] ^= 1        # coin-flip predictions
        alarm = monitor.observe(predicted, truth)
        assert alarm is not None
        assert alarm.monitor == "fidelity"
        assert alarm.statistic < 0.97 - 0.05

    def test_quiet_below_min_observations(self):
        monitor = self.make(min_observations=50)
        monitor.set_baseline(1.0)
        truth = np.zeros((10, 2), dtype=int)
        assert monitor.observe(1 - truth, truth) is None   # 0% fidelity, 10 obs

    def test_absolute_floor_without_baseline(self):
        monitor = self.make(min_fidelity=0.8)
        truth = np.zeros((30, 2), dtype=int)
        assert monitor.observe(1 - truth, truth) is not None

    def test_reset_clears_window(self):
        monitor = self.make()
        truth = np.zeros((30, 2), dtype=int)
        monitor.observe(truth, truth)
        assert monitor.n_observations == 30
        monitor.reset()
        assert monitor.n_observations == 0
        assert np.isnan(monitor.fidelity())

    def test_single_probe_shape(self):
        monitor = self.make(min_observations=1)
        monitor.observe(np.array([0, 1]), np.array([0, 1]))
        assert monitor.fidelity() == 1.0

    def test_mismatched_shapes_rejected(self):
        monitor = self.make()
        with pytest.raises(ValueError, match="disagree"):
            monitor.observe(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            FidelityMonitor(window=0)
        with pytest.raises(ValueError, match="drop_tolerance"):
            FidelityMonitor(drop_tolerance=0)
        with pytest.raises(ValueError, match="min_observations"):
            FidelityMonitor(window=10, min_observations=11)


class TestPageHinkley:
    def test_stable_stream_never_fires(self):
        detector = PageHinkley(delta=0.5, lam=10.0)
        rng = np.random.default_rng(0)
        assert not any(detector.update(x)
                       for x in rng.standard_normal(2000))

    @pytest.mark.parametrize("direction", [+1.0, -1.0])
    def test_detects_mean_shift_both_directions(self, direction):
        detector = PageHinkley(delta=0.5, lam=10.0)
        rng = np.random.default_rng(1)
        for x in rng.standard_normal(300):
            assert not detector.update(x)
        fired = any(detector.update(x + direction * 4.0)
                    for x in rng.standard_normal(200))
        assert fired

    def test_reset(self):
        detector = PageHinkley(delta=0.0, lam=1.0)
        for _ in range(50):
            detector.update(1.0)
            detector.update(-1.0)
        assert detector.statistic > 0
        detector.reset()
        assert detector.statistic == 0.0


class TestScoreDriftMonitor:
    def batches(self, rng, n, offset=0.0, n_qubits=2):
        for _ in range(n):
            yield offset + rng.standard_normal((64, n_qubits, 2, 10))

    def test_warmup_then_detects_shift(self):
        monitor = ScoreDriftMonitor(n_qubits=2, warmup_batches=5)
        rng = np.random.default_rng(0)
        for demod in self.batches(rng, 30):
            assert monitor.observe_batch(demod) is None
        # Shift every qubit's mean response by ~5 per-batch sigmas.
        shift = 5.0 / np.sqrt(64 * 10)
        alarms = [monitor.observe_batch(d)
                  for d in self.batches(rng, 40, offset=shift)]
        assert alarms[-1] is not None
        assert alarms[-1].monitor == "score-drift"
        assert monitor.alarm is alarms[-1]      # sticky until reset

    def test_no_false_alarm_on_stationary_traffic(self):
        monitor = ScoreDriftMonitor(n_qubits=2, warmup_batches=5)
        rng = np.random.default_rng(2)
        for demod in self.batches(rng, 200):
            monitor.observe_batch(demod)
        assert monitor.alarm is None

    def test_reset_rebaselines(self):
        monitor = ScoreDriftMonitor(n_qubits=1, warmup_batches=3)
        rng = np.random.default_rng(3)
        for demod in self.batches(rng, 20, n_qubits=1):
            monitor.observe_batch(demod)
        shift = 8.0 / np.sqrt(64 * 10)
        for demod in self.batches(rng, 40, offset=shift, n_qubits=1):
            monitor.observe_batch(demod)
        assert monitor.alarm is not None
        monitor.reset()
        assert monitor.alarm is None
        # The shifted level is the new normal: no immediate re-alarm.
        for demod in self.batches(rng, 30, offset=shift, n_qubits=1):
            monitor.observe_batch(demod)
        assert monitor.alarm is None

    def test_shape_validation(self):
        monitor = ScoreDriftMonitor(n_qubits=2)
        with pytest.raises(ValueError, match="demod"):
            monitor.observe_batch(np.zeros((10, 3, 2, 5)))

    def test_no_false_alarm_on_constant_traffic(self):
        # Regression: a near-deterministic warmup (std ~ 0) used to floor
        # sigma at an absolute 1e-9, standardizing later float-level
        # jitter into huge excursions and firing instantly on perfectly
        # healthy constant traffic. Sigma must floor relative to the
        # statistics' scale — including for a component whose own mean is
        # zero (here the Q channel: the response lies along the I axis).
        monitor = ScoreDriftMonitor(n_qubits=1, warmup_batches=4)
        base = np.zeros((32, 1, 2, 8))
        base[:, :, 0, :] = 0.9               # I response only; mean Q = 0
        for _ in range(4):
            monitor.observe_batch(base)      # exactly constant warmup
        rng = np.random.default_rng(0)
        for _ in range(100):
            jitter = 1e-7 * rng.standard_normal(base.shape)
            monitor.observe_batch(base + jitter)
        assert monitor.alarm is None

    def test_relative_floor_preserves_real_detection(self):
        # The floor mutes float jitter, not real shifts: a 10% move of the
        # mean response still alarms promptly.
        monitor = ScoreDriftMonitor(n_qubits=1, warmup_batches=4)
        base = np.full((32, 1, 2, 8), 0.9)
        rng = np.random.default_rng(1)
        for _ in range(4):
            monitor.observe_batch(base)
        for _ in range(20):                  # healthy steady state first
            monitor.observe_batch(base + 1e-7 * rng.standard_normal(
                base.shape))
        for _ in range(40):
            monitor.observe_batch(base + 0.09)
        assert monitor.alarm is not None

    def test_sigma_floor_validation(self):
        with pytest.raises(ValueError, match="sigma floors"):
            ScoreDriftMonitor(n_qubits=1, sigma_rel_floor=-0.1)
        with pytest.raises(ValueError, match="sigma floors"):
            ScoreDriftMonitor(n_qubits=1, sigma_abs_floor=0.0)
