"""Recalibrator and calibration-loop tests over a live server."""

import numpy as np
import pytest

from repro.calib import (CalibrationLoop, DriftingSimulator, DriftSchedule,
                         FidelityMonitor, ParameterDrift, Recalibrator,
                         ScoreDriftMonitor, attach_score_monitors)
from repro.core import load_pipeline, make_design
from repro.engine import ReadoutEngine
from repro.experiments.drift_recovery import drifting_two_qubit_device
from repro.readout import single_qubit_device
from repro.serve import build_sharded_server


def make_simulator(magnitude=2.2, start_shot=0):
    schedule = DriftSchedule([
        ParameterDrift(parameter="iq_angle_rad", kind="step",
                       magnitude=magnitude, start_shot=start_shot),
    ])
    return DriftingSimulator(single_qubit_device(), schedule)


def make_server(simulator, seed=0):
    """An 'mf' server calibrated on the simulator's current truth."""
    calib = simulator.calibration_set(120, np.random.default_rng(seed))
    train, val, _ = calib.split(np.random.default_rng(seed + 1), 0.6, 0.15)
    return build_sharded_server(("mf",), train, val, n_shards=1,
                                max_wait_ms=0.5).start()


def fit_engine(simulator, seed=3):
    """A fresh fitted single-design engine at the simulator's truth."""
    calib = simulator.calibration_set(100, np.random.default_rng(seed))
    train, val, _ = calib.split(np.random.default_rng(seed + 1), 0.6, 0.15)
    engine = ReadoutEngine({"mf": make_design("mf").fit(train, val)})
    return engine, train.device


class TestRecalibrator:
    def test_promotes_under_drift(self, tmp_path):
        # Calibrate clean, then step-drift the device hard: the refit
        # candidate must beat the stale incumbent and get promoted.
        simulator = make_simulator(start_shot=50)
        server = make_server(simulator)
        simulator.shot = 100                 # past the onset: truth rotated
        recalibrator = Recalibrator(server,
                                    calibration_shots_per_state=120,
                                    snapshot_dir=str(tmp_path))
        report = recalibrator.recalibrate(simulator,
                                          np.random.default_rng(5))
        assert report.swapped == 1
        [shard] = report.shards
        assert shard.promoted
        assert shard.candidate_fidelity > shard.incumbent_fidelity + 0.1
        assert shard.model_version == 1
        assert server.stats.model_versions == {0: 1}
        assert server.stats.swaps == 1
        # The promoted pipeline was snapshotted and round-trips.
        [snapshot] = sorted(tmp_path.glob("shard0_mf_v1.npz"))
        assert load_pipeline(str(snapshot)).fitted
        # The promoted engine actually serves: fidelity back up.
        probe = simulator.calibration_set(40, np.random.default_rng(6))
        bits = server.predict(probe.demod).bits_for("mf")
        assert np.mean(bits == probe.labels) > 0.9
        server.stop()

    def test_rejects_candidate_without_improvement(self):
        # No drift at all: a refit on fresh shots of the same truth cannot
        # clear a positive improvement margin, so the incumbent stays.
        simulator = make_simulator(magnitude=0.0)
        server = make_server(simulator)
        recalibrator = Recalibrator(server,
                                    calibration_shots_per_state=120,
                                    min_improvement=0.05)
        report = recalibrator.recalibrate(simulator,
                                          np.random.default_rng(5))
        assert report.swapped == 0
        assert not report.shards[0].promoted
        assert server.stats.swaps == 0
        assert server.stats.model_versions == {}
        server.stop()

    def test_callable_source(self):
        simulator = make_simulator(magnitude=0.0)
        server = make_server(simulator)
        calls = []

        def source(shots_per_state, rng):
            calls.append(shots_per_state)
            return simulator.calibration_set(shots_per_state, rng)

        Recalibrator(server, calibration_shots_per_state=60).recalibrate(
            source, np.random.default_rng(0))
        assert calls == [60]
        server.stop()

    def test_validation(self):
        simulator = make_simulator()
        server = make_server(simulator)
        with pytest.raises(ValueError, match="calibration_shots_per_state"):
            Recalibrator(server, calibration_shots_per_state=2)
        with pytest.raises(ValueError, match="min_improvement"):
            Recalibrator(server, min_improvement=-0.1)
        server.stop()


class TestPerShardCycles:
    def make_two_shard(self, magnitude=2.0, start_shot=50):
        """Two-shard server; qubit 1 (shard 1) step-drifts at start_shot."""
        schedule = DriftSchedule([
            ParameterDrift(parameter="iq_angle_rad", qubit=1, kind="step",
                           magnitude=magnitude, start_shot=start_shot),
        ])
        simulator = DriftingSimulator(drifting_two_qubit_device(), schedule)
        calib = simulator.calibration_set(100, np.random.default_rng(0))
        train, val, _ = calib.split(np.random.default_rng(1), 0.6, 0.15)
        server = build_sharded_server(("mf",), train, val, n_shards=2,
                                      max_wait_ms=0.5).start()
        return simulator, server

    def test_recalibrate_shard_repairs_one_shard(self):
        # Only shard 1 drifted; its independent cycle collects its own
        # calibration set and promotes without touching shard 0.
        simulator, server = self.make_two_shard()
        simulator.shot = 100                 # past onset: qubit 1 rotated
        recalibrator = Recalibrator(server, calibration_shots_per_state=100)
        report = recalibrator.recalibrate_shard(
            1, simulator, np.random.default_rng(5))
        assert report.shard_index == 1
        assert report.promoted
        assert report.candidate_fidelity > report.incumbent_fidelity + 0.1
        assert report.model_version == 1
        assert server.stats.model_versions == {1: 1}
        # The repaired shard serves well again; shard 0 kept version 0.
        probe = simulator.calibration_set(40, np.random.default_rng(6))
        bits = server.predict(probe.demod).bits_for("mf")
        assert np.mean(bits[:, 1] == probe.labels[:, 1]) > 0.9
        server.stop()

    def test_recalibrate_shard_unknown_index(self):
        simulator, server = self.make_two_shard()
        recalibrator = Recalibrator(server, calibration_shots_per_state=40)
        with pytest.raises(ValueError, match="no shard with feedline"):
            recalibrator.recalibrate_shard(7, simulator,
                                           np.random.default_rng(0))
        server.stop()

    def test_recalibrate_scoped_to_shard_indices(self):
        simulator, server = self.make_two_shard()
        simulator.shot = 100
        recalibrator = Recalibrator(server, calibration_shots_per_state=100,
                                    min_improvement=0.05)
        # Scope the cycle to the healthy shard only: its candidate cannot
        # clear the margin, and the drifting shard must not be touched.
        report = recalibrator.recalibrate(simulator,
                                          np.random.default_rng(5),
                                          shard_indices=[0])
        assert [s.shard_index for s in report.shards] == [0]
        assert report.swapped == 0
        assert server.stats.model_versions == {}
        with pytest.raises(ValueError, match="no shard with feedline"):
            recalibrator.recalibrate(simulator, np.random.default_rng(5),
                                     shard_indices=[0, 9])
        server.stop()


class TestAttachScoreMonitors:
    def test_monitor_count_must_match_shards(self):
        simulator = make_simulator()
        server = make_server(simulator)
        with pytest.raises(ValueError, match="one monitor per shard"):
            attach_score_monitors(server, [])
        server.stop()

    def test_stale_hook_detached_from_retired_engine(self):
        # Regression: re-attaching after a promotion must move the hook,
        # not leave the retired incumbent feeding the monitor forever.
        simulator = make_simulator(magnitude=0.0)
        server = make_server(simulator)
        monitor = ScoreDriftMonitor(n_qubits=1, warmup_batches=2)
        attach_score_monitors(server, [monitor])
        retired = server.shards[0].engine
        replacement, device = fit_engine(simulator)
        server.swap_engine(0, replacement, device=device)
        attach_score_monitors(server, [monitor])

        probe = simulator.calibration_set(10, np.random.default_rng(9))
        seen = monitor.batches_seen
        retired.predict_bits(probe)          # e.g. offline re-scoring
        assert monitor.batches_seen == seen  # stale hook would increment
        replacement.predict_bits(probe)
        assert monitor.batches_seen > seen
        server.stop()

    def test_rehook_survives_engine_id_reuse(self):
        # Regression for the id()-reuse bug: a replacement engine
        # allocated at a freed incumbent's address must still be hooked —
        # identity tracked by id() silently skips it, killing drift
        # monitoring for the shard after a promotion.
        simulator = make_simulator(magnitude=0.0)
        server = make_server(simulator)
        monitor = ScoreDriftMonitor(n_qubits=1, warmup_batches=2)
        calib = simulator.calibration_set(100, np.random.default_rng(5))
        train, val, _ = calib.split(np.random.default_rng(6), 0.6, 0.15)
        designs = {"mf": make_design("mf").fit(train, val)}

        # Each round hooks a freshly allocated incumbent, retires it, and
        # allocates one candidate: CPython's allocator hands back the
        # just-freed slot on most rounds (the litter list perturbs the
        # heap between rounds so retries are independent).
        reused, litter = None, []
        for _ in range(32):
            incumbent = ReadoutEngine(designs)
            server.swap_engine(0, incumbent, device=train.device)
            attach_score_monitors(server, [monitor])
            incumbent_id = id(incumbent)
            del incumbent
            server.swap_engine(0, ReadoutEngine(designs),
                               device=train.device)   # hooked engine freed
            candidate = ReadoutEngine(designs)
            if id(candidate) == incumbent_id:
                reused = candidate
                break
            litter.append(candidate)
        if reused is None:
            pytest.skip("allocator never reused a hooked engine's address")

        server.swap_engine(0, reused, device=train.device)
        attach_score_monitors(server, [monitor])
        probe = simulator.calibration_set(10, np.random.default_rng(9))
        seen = monitor.batches_seen
        reused.predict_bits(probe)
        assert monitor.batches_seen > seen   # id()-tracking skips the hook
        server.stop()


class TestCalibrationLoop:
    def test_closed_loop_recovers_fidelity(self):
        simulator = make_simulator(magnitude=2.2,
                                   start_shot=2 * 200)
        server = make_server(simulator)
        loop = CalibrationLoop(
            server, simulator,
            Recalibrator(server, calibration_shots_per_state=120),
            fidelity_monitor=FidelityMonitor(window=400,
                                             drop_tolerance=0.05,
                                             min_observations=100),
            recal_rng=np.random.default_rng(9))
        records = loop.run(n_windows=10, traces_per_window=200,
                           rng=np.random.default_rng(7))
        assert loop.swap_count >= 1
        assert loop.request_failures == 0
        assert any(r.alarm is not None for r in records)
        # After the step drift + recovery, serving fidelity is healthy
        # again by the final window.
        assert records[-1].fidelity > 0.9
        # Version counters prove zero-downtime promotions happened.
        assert server.stats.model_versions[0] >= 1
        server.stop()

    def test_monitor_only_loop_never_recalibrates(self):
        simulator = make_simulator(magnitude=2.2, start_shot=100)
        server = make_server(simulator)
        loop = CalibrationLoop(server, simulator, recalibrator=None)
        records = loop.run(n_windows=4, traces_per_window=150,
                           rng=np.random.default_rng(7))
        assert loop.swap_count == 0
        assert all(r.recalibration is None for r in records)
        # Fidelity visibly degrades with nobody fixing it.
        assert records[-1].fidelity < records[0].fidelity - 0.1
        server.stop()

    def test_cooldown_records_suppressed_alarm(self):
        # Regression: an alarm raised during a cooldown window used to be
        # overwritten to None, so the WindowRecord trail claimed nothing
        # fired. It must be kept, flagged suppressed, and not acted on.
        simulator = make_simulator(magnitude=0.0)
        server = make_server(simulator)
        loop = CalibrationLoop(
            server, simulator,
            # min_improvement=1: every attempt is rejected, so the alarm
            # keeps firing while cooldown windows tick down.
            Recalibrator(server, calibration_shots_per_state=60,
                         min_improvement=1.0),
            fidelity_monitor=FidelityMonitor(window=100, min_fidelity=1.01,
                                             min_observations=10),
            score_monitoring=False, cooldown_windows=2,
            recal_rng=np.random.default_rng(3))
        records = loop.run(n_windows=4, traces_per_window=60,
                           rng=np.random.default_rng(4))

        assert records[0].alarm is not None
        assert records[0].recalibration is not None
        assert not records[0].suppressed
        for record in records[1:3]:          # the two cooldown windows
            assert record.alarm is not None   # kept, not erased
            assert record.suppressed
            assert record.recalibration is None
        assert records[3].recalibration is not None   # cooldown over
        server.stop()

    def test_score_alarm_scopes_recalibration_to_its_shard(self):
        # A label-free alarm on one shard repairs that shard only — the
        # loop drives the same per-shard primitive the worker uses.
        # Onset at window 9: the score monitors' 8-batch warmup (one
        # micro-batch per window here) completes on healthy traffic first.
        schedule = DriftSchedule([
            ParameterDrift(parameter="iq_angle_rad", qubit=1, kind="step",
                           magnitude=2.0, start_shot=900),
        ])
        simulator = DriftingSimulator(drifting_two_qubit_device(), schedule)
        calib = simulator.calibration_set(100, np.random.default_rng(0))
        train, val, _ = calib.split(np.random.default_rng(1), 0.6, 0.15)
        server = build_sharded_server(("mf",), train, val, n_shards=2,
                                      max_wait_ms=0.5).start()
        loop = CalibrationLoop(
            server, simulator,
            Recalibrator(server, calibration_shots_per_state=80),
            design="mf",
            # Effectively mute the whole-device fidelity monitor so the
            # per-shard score monitors drive detection.
            fidelity_monitor=FidelityMonitor(window=400,
                                             drop_tolerance=0.49,
                                             min_observations=400),
            recal_rng=np.random.default_rng(9))
        records = loop.run(n_windows=14, traces_per_window=100,
                           rng=np.random.default_rng(7))
        reports = [r.recalibration for r in records
                   if r.recalibration is not None]
        assert reports, "score monitors never triggered a recalibration"
        assert all({s.shard_index for s in report.shards} == {1}
                   for report in reports)
        assert server.stats.model_versions.get(1, 0) >= 1
        assert server.stats.model_versions.get(0, 0) == 0
        assert loop.request_failures == 0
        server.stop()

    def test_design_selection_validated(self):
        simulator = make_simulator()
        server = make_server(simulator)
        with pytest.raises(ValueError, match="unknown design"):
            CalibrationLoop(server, simulator, design="mf-rmf-nn")
        server.stop()
