"""Recalibrator and calibration-loop tests over a live server."""

import numpy as np
import pytest

from repro.calib import (CalibrationLoop, DriftingSimulator, DriftSchedule,
                         FidelityMonitor, ParameterDrift, Recalibrator,
                         attach_score_monitors)
from repro.core import load_pipeline
from repro.readout import single_qubit_device
from repro.serve import build_sharded_server


def make_simulator(magnitude=2.2, start_shot=0):
    schedule = DriftSchedule([
        ParameterDrift(parameter="iq_angle_rad", kind="step",
                       magnitude=magnitude, start_shot=start_shot),
    ])
    return DriftingSimulator(single_qubit_device(), schedule)


def make_server(simulator, seed=0):
    """An 'mf' server calibrated on the simulator's current truth."""
    calib = simulator.calibration_set(120, np.random.default_rng(seed))
    train, val, _ = calib.split(np.random.default_rng(seed + 1), 0.6, 0.15)
    return build_sharded_server(("mf",), train, val, n_shards=1,
                                max_wait_ms=0.5).start()


class TestRecalibrator:
    def test_promotes_under_drift(self, tmp_path):
        # Calibrate clean, then step-drift the device hard: the refit
        # candidate must beat the stale incumbent and get promoted.
        simulator = make_simulator(start_shot=50)
        server = make_server(simulator)
        simulator.shot = 100                 # past the onset: truth rotated
        recalibrator = Recalibrator(server,
                                    calibration_shots_per_state=120,
                                    snapshot_dir=str(tmp_path))
        report = recalibrator.recalibrate(simulator,
                                          np.random.default_rng(5))
        assert report.swapped == 1
        [shard] = report.shards
        assert shard.promoted
        assert shard.candidate_fidelity > shard.incumbent_fidelity + 0.1
        assert shard.model_version == 1
        assert server.stats.model_versions == {0: 1}
        assert server.stats.swaps == 1
        # The promoted pipeline was snapshotted and round-trips.
        [snapshot] = sorted(tmp_path.glob("shard0_mf_v1.npz"))
        assert load_pipeline(str(snapshot)).fitted
        # The promoted engine actually serves: fidelity back up.
        probe = simulator.calibration_set(40, np.random.default_rng(6))
        bits = server.predict(probe.demod).bits_for("mf")
        assert np.mean(bits == probe.labels) > 0.9
        server.stop()

    def test_rejects_candidate_without_improvement(self):
        # No drift at all: a refit on fresh shots of the same truth cannot
        # clear a positive improvement margin, so the incumbent stays.
        simulator = make_simulator(magnitude=0.0)
        server = make_server(simulator)
        recalibrator = Recalibrator(server,
                                    calibration_shots_per_state=120,
                                    min_improvement=0.05)
        report = recalibrator.recalibrate(simulator,
                                          np.random.default_rng(5))
        assert report.swapped == 0
        assert not report.shards[0].promoted
        assert server.stats.swaps == 0
        assert server.stats.model_versions == {}
        server.stop()

    def test_callable_source(self):
        simulator = make_simulator(magnitude=0.0)
        server = make_server(simulator)
        calls = []

        def source(shots_per_state, rng):
            calls.append(shots_per_state)
            return simulator.calibration_set(shots_per_state, rng)

        Recalibrator(server, calibration_shots_per_state=60).recalibrate(
            source, np.random.default_rng(0))
        assert calls == [60]
        server.stop()

    def test_validation(self):
        simulator = make_simulator()
        server = make_server(simulator)
        with pytest.raises(ValueError, match="calibration_shots_per_state"):
            Recalibrator(server, calibration_shots_per_state=2)
        with pytest.raises(ValueError, match="min_improvement"):
            Recalibrator(server, min_improvement=-0.1)
        server.stop()


class TestAttachScoreMonitors:
    def test_monitor_count_must_match_shards(self):
        simulator = make_simulator()
        server = make_server(simulator)
        with pytest.raises(ValueError, match="one monitor per shard"):
            attach_score_monitors(server, [])
        server.stop()


class TestCalibrationLoop:
    def test_closed_loop_recovers_fidelity(self):
        simulator = make_simulator(magnitude=2.2,
                                   start_shot=2 * 200)
        server = make_server(simulator)
        loop = CalibrationLoop(
            server, simulator,
            Recalibrator(server, calibration_shots_per_state=120),
            fidelity_monitor=FidelityMonitor(window=400,
                                             drop_tolerance=0.05,
                                             min_observations=100),
            recal_rng=np.random.default_rng(9))
        records = loop.run(n_windows=10, traces_per_window=200,
                           rng=np.random.default_rng(7))
        assert loop.swap_count >= 1
        assert loop.request_failures == 0
        assert any(r.alarm is not None for r in records)
        # After the step drift + recovery, serving fidelity is healthy
        # again by the final window.
        assert records[-1].fidelity > 0.9
        # Version counters prove zero-downtime promotions happened.
        assert server.stats.model_versions[0] >= 1
        server.stop()

    def test_monitor_only_loop_never_recalibrates(self):
        simulator = make_simulator(magnitude=2.2, start_shot=100)
        server = make_server(simulator)
        loop = CalibrationLoop(server, simulator, recalibrator=None)
        records = loop.run(n_windows=4, traces_per_window=150,
                           rng=np.random.default_rng(7))
        assert loop.swap_count == 0
        assert all(r.recalibration is None for r in records)
        # Fidelity visibly degrades with nobody fixing it.
        assert records[-1].fidelity < records[0].fidelity - 0.1
        server.stop()

    def test_design_selection_validated(self):
        simulator = make_simulator()
        server = make_server(simulator)
        with pytest.raises(ValueError, match="unknown design"):
            CalibrationLoop(server, simulator, design="mf-rmf-nn")
        server.stop()
