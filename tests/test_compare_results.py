"""Benchmark regression-gate tests (benchmarks/compare_results.py)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_results",
    pathlib.Path(__file__).parent.parent / "benchmarks" /
    "compare_results.py")
compare_results = importlib.util.module_from_spec(_SPEC)
sys.modules["compare_results"] = compare_results   # dataclasses need this
_SPEC.loader.exec_module(compare_results)


def payload(**data):
    return {"experiment": "bench_x", "data": data}


class TestComparableMetrics:
    def test_tracks_quality_patterns_only(self):
        metrics = compare_results.comparable_metrics(payload(
            speedup_vs_designs=8.0, recovered_fraction=0.9,
            sharing_ratio=0.6, p99_ms=3.0, served_tps=5000.0,
            mean_batch_traces=30.0))
        assert metrics == {"speedup_vs_designs": 8.0,
                           "recovered_fraction": 0.9,
                           "sharing_ratio": 0.6}

    def test_absolute_throughput_opt_in(self):
        data = payload(served_tps=5000.0)
        assert compare_results.comparable_metrics(data) == {}
        assert compare_results.comparable_metrics(
            data, include_absolute=True) == {"served_tps": 5000.0}

    def test_nested_dicts_with_dotted_paths(self):
        metrics = compare_results.comparable_metrics(payload(
            recovery={"recovered_fraction": 0.85,
                      "summary": {"pre_drift_fidelity": 0.97}}))
        assert metrics == {"recovery.recovered_fraction": 0.85,
                           "recovery.summary.pre_drift_fidelity": 0.97}

    def test_excluded_patterns_win(self):
        metrics = compare_results.comparable_metrics(payload(
            no_recal_fidelity=0.6, with_loop_fidelity=0.95))
        assert metrics == {"with_loop_fidelity": 0.95}

    def test_non_numeric_values_ignored(self):
        metrics = compare_results.comparable_metrics(payload(
            fidelity_note="high", accuracy=True, speedup=[1, 2],
            real_accuracy=0.9))
        assert metrics == {"real_accuracy": 0.9}

    def test_dispatch_ratios_tracked_but_lag_and_fallbacks_excluded(self):
        metrics = compare_results.comparable_metrics(payload(
            dispatch={"served": {"slab_reuse_ratio": 0.9,
                                 "ring_coalesce_ratio": 2.5,
                                 "dispatch_lag_p99_ms": 1.5,
                                 "trace_slab_fallbacks": 0.0}}))
        assert metrics == {"dispatch.served.slab_reuse_ratio": 0.9,
                           "dispatch.served.ring_coalesce_ratio": 2.5}


class TestComparePayloads:
    def compare(self, base, curr, **kwargs):
        kwargs.setdefault("max_regression", 0.2)
        return compare_results.compare_payloads(
            payload(**base), payload(**curr), file="bench_x.json", **kwargs)

    def test_clean_when_within_threshold(self):
        assert self.compare({"speedup": 8.0}, {"speedup": 7.0}) == []

    def test_flags_large_drop(self):
        [regression] = self.compare({"speedup": 8.0}, {"speedup": 4.0})
        assert regression.metric == "speedup"
        assert regression.drop_fraction == pytest.approx(0.5)
        assert "bench_x.json" in str(regression)

    def test_improvement_never_flags(self):
        assert self.compare({"accuracy": 0.8}, {"accuracy": 0.99}) == []

    def test_new_and_retired_metrics_skipped(self):
        assert self.compare({"old_speedup": 5.0}, {"new_speedup": 1.0}) == []

    def test_zero_baseline_skipped(self):
        assert self.compare({"speedup": 0.0}, {"speedup": -1.0}) == []

    def test_scaling_metrics_skipped_across_different_cpu_counts(self):
        # A parallel-scaling ratio from an 8-core baseline must not fail
        # a 1-core runner that physically cannot reproduce it.
        base = {"scaling": {"cpus": 8, "process_speedup_4shards": 3.1}}
        curr = {"scaling": {"cpus": 1, "process_speedup_4shards": 0.6}}
        assert self.compare(base, curr) == []

    def test_scaling_metrics_gated_on_matching_cpu_counts(self):
        base = {"scaling": {"cpus": 4, "process_speedup_4shards": 2.0}}
        curr = {"scaling": {"cpus": 4, "process_speedup_4shards": 1.0}}
        [regression] = self.compare(base, curr)
        assert regression.metric == "scaling.process_speedup_4shards"

    def test_scaling_metrics_skipped_below_min_cpus(self):
        # On a 1-core host the 4-shard sweep measures scheduler
        # contention, not parallel scaling — a wild swing between two
        # such runs is noise and must not trip the gate.
        base = {"scaling": {"cpus": 1, "process_speedup_4shards": 1.0}}
        curr = {"scaling": {"cpus": 1, "process_speedup_4shards": 0.36}}
        assert self.compare(base, curr) == []

    def test_min_cpus_guard_leaves_dispatch_and_plain_metrics_gated(self):
        # The low-core skip is scoped to scaling.* speedups: dispatch
        # ratios and host-independent metrics still gate on a 1-core
        # baseline.
        base = {"scaling": {"cpus": 1}, "speedup_vs_designs": 8.0,
                "dispatch": {"served": {"slab_reuse_ratio": 0.9}}}
        curr = {"scaling": {"cpus": 1}, "speedup_vs_designs": 2.0,
                "dispatch": {"served": {"slab_reuse_ratio": 0.2}}}
        metrics = {r.metric for r in self.compare(base, curr)}
        assert metrics == {"speedup_vs_designs",
                           "dispatch.served.slab_reuse_ratio"}

    def test_dispatch_metrics_follow_the_cpu_guard(self):
        # Slab-reuse/coalesce ratios track how backlogged the dispatcher
        # was, which depends on host parallelism just like the scaling
        # speedups — same-cpus baselines gate, cross-cpus ones do not.
        base = {"scaling": {"cpus": 8},
                "dispatch": {"served": {"ring_coalesce_ratio": 3.0}}}
        curr_other = {"scaling": {"cpus": 1},
                      "dispatch": {"served": {"ring_coalesce_ratio": 1.0}}}
        assert self.compare(base, curr_other) == []
        curr_same = {"scaling": {"cpus": 8},
                     "dispatch": {"served": {"ring_coalesce_ratio": 1.0}}}
        [regression] = self.compare(base, curr_same)
        assert regression.metric == "dispatch.served.ring_coalesce_ratio"

    def test_non_scaling_metrics_still_gated_across_cpu_counts(self):
        base = {"scaling": {"cpus": 8}, "speedup_vs_designs": 8.0}
        curr = {"scaling": {"cpus": 1}, "speedup_vs_designs": 2.0}
        [regression] = self.compare(base, curr)
        assert regression.metric == "speedup_vs_designs"


class TestMain:
    def write(self, directory, name, **data):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(payload(**data)))

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        self.write(tmp_path / "current", "bench_a.json", speedup=8.0)
        self.write(tmp_path / "base", "bench_a.json", speedup=8.5)
        assert compare_results.main([
            "--results-dir", str(tmp_path / "current"),
            "--baseline-dir", str(tmp_path / "base")]) == 0
        assert "no tracked metric regressed" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        self.write(tmp_path / "current", "bench_a.json", speedup=2.0)
        self.write(tmp_path / "base", "bench_a.json", speedup=8.0)
        assert compare_results.main([
            "--results-dir", str(tmp_path / "current"),
            "--baseline-dir", str(tmp_path / "base"),
            "--max-regression", "0.3"]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_missing_baseline_skipped(self, tmp_path, capsys):
        self.write(tmp_path / "current", "bench_new.json", speedup=1.0)
        (tmp_path / "base").mkdir()
        assert compare_results.main([
            "--results-dir", str(tmp_path / "current"),
            "--baseline-dir", str(tmp_path / "base")]) == 0
        assert "no baseline, skipped" in capsys.readouterr().out

    def test_empty_results_dir_is_an_error(self, tmp_path):
        (tmp_path / "current").mkdir()
        assert compare_results.main([
            "--results-dir", str(tmp_path / "current")]) == 2

    def test_against_this_repos_committed_baselines(self):
        # The real invocation CI uses: fresh results (whatever state the
        # working tree is in) vs committed git baselines must parse.
        code = compare_results.main([])
        assert code in (0, 1)       # parses and compares; no crash