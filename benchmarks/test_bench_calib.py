"""Calibration-loop benchmark: drift recovery and hot-swap overhead.

Two claims are asserted:

* the closed calib loop (monitors -> recalibrator -> hot swap) recovers
  >= 70% of the drift-induced fidelity loss relative to the
  no-recalibration baseline arm of the ``drift_recovery`` experiment,
  with promoted swaps observed (per-shard model versions > 0) and zero
  request failures — swaps must be invisible to traffic;
* ``swap_engine`` adds negligible serve-path overhead: a closed-loop load
  run with an aggressive background swapper sustains most of the
  swap-free throughput, again with zero failures.

Measured numbers land in ``benchmarks/results/bench_calib.json``.
"""

import json
import threading

import numpy as np

from repro.core import make_design
from repro.engine import ReadoutEngine
from repro.experiments import run_experiment
from repro.experiments.results import ExperimentResult
from repro.readout import generate_dataset, single_qubit_device
from repro.serve import build_sharded_server, closed_loop

from conftest import json_result_path, run_once

SEED = 2023
#: Background swap cadence during the overhead run (aggressive on purpose:
#: a real recalibration promotes once per drift episode, not at 200 Hz).
SWAP_INTERVAL_S = 0.005
N_CLIENTS = 16
REQUESTS_PER_CLIENT = 200


def _swap_overhead() -> dict:
    """Closed-loop throughput with and without a background hot swapper."""
    device = single_qubit_device()
    data = generate_dataset(device, shots_per_state=120,
                            rng=np.random.default_rng(SEED))
    train, val, test = data.split(np.random.default_rng(SEED + 1), 0.5, 0.1)

    def run(swapping: bool):
        server = build_sharded_server(("mf",), train, val, n_shards=1,
                                      max_batch_traces=128, max_wait_ms=0.5)
        server.start()
        # Two fitted engines ping-ponged by the swapper; both serve the
        # same design so every swap is a legal promotion.
        engines = [
            ReadoutEngine({"mf": make_design("mf").fit(train, val)})
            for _ in range(2)
        ]
        stop = threading.Event()
        swaps_done = [0]

        def swapper():
            while not stop.wait(SWAP_INTERVAL_S):
                server.swap_engine(0, engines[swaps_done[0] % 2])
                swaps_done[0] += 1

        thread = None
        if swapping:
            thread = threading.Thread(target=swapper, daemon=True)
            thread.start()
        report = closed_loop(server, test, n_clients=N_CLIENTS,
                             requests_per_client=REQUESTS_PER_CLIENT,
                             traces_per_request=2, seed=SEED + 2)
        if thread is not None:
            stop.set()
            thread.join()
        server.stop()
        return report, swaps_done[0], server.stats.snapshot()

    baseline_report, _, baseline_stats = run(swapping=False)
    swapped_report, n_swaps, swapped_stats = run(swapping=True)
    for label, report in (("baseline", baseline_report),
                          ("swapping", swapped_report)):
        if report.failed or report.rejected:
            raise RuntimeError(
                f"degraded {label} load run ({report.failed} failed, "
                f"{report.rejected} rejected); overhead numbers would lie")
    return {
        "baseline_tps": baseline_report.traces_per_s(),
        "swapping_tps": swapped_report.traces_per_s(),
        "throughput_ratio": (swapped_report.traces_per_s()
                             / baseline_report.traces_per_s()),
        "swaps_during_run": n_swaps,
        "swapping_p99_ms": swapped_report.latency_ms(99),
        "baseline_p99_ms": baseline_report.latency_ms(99),
        "swapping_failed": swapped_report.failed,
        "model_versions": swapped_stats["model_versions"],
        "baseline_stats": baseline_stats,
    }


def run_bench_calib() -> ExperimentResult:
    recovery = run_experiment("drift_recovery")
    summary = recovery.data["summary"]
    overhead = _swap_overhead()

    return ExperimentResult(
        experiment="bench_calib",
        title=("Closed-loop recalibration: drift recovery and hot-swap "
               "overhead"),
        headers=["metric", "value"],
        rows=[
            ["pre_drift_fidelity", summary["pre_drift_fidelity"]],
            ["no_recal_fidelity", summary["no_recal_fidelity"]],
            ["with_loop_fidelity", summary["with_loop_fidelity"]],
            ["recovered_fraction", summary["recovered_fraction"]],
            ["swap_count", summary["swap_count"]],
            ["request_failures", summary["request_failures_with_loop"]],
            ["swap_throughput_ratio", overhead["throughput_ratio"]],
            ["swaps_during_load_run", overhead["swaps_during_run"]],
        ],
        notes=(f"recovery arm: {summary['swap_count']} promoted swaps, "
               f"versions {summary['model_versions']}; overhead arm: "
               f"{overhead['swaps_during_run']} background swaps at "
               f"{1 / SWAP_INTERVAL_S:.0f} Hz during a "
               f"{N_CLIENTS}-client closed loop"),
        data={"recovery": summary, "overhead": overhead},
    )


def test_bench_calib(benchmark, record_result):
    result = run_once(benchmark, run_bench_calib)
    record_result(result)
    recovery = result.data["recovery"]
    overhead = result.data["overhead"]

    # Acceptance: the loop recovers >= 70% of the drift-induced loss
    # (measured ~90%; the bound leaves room for scheduler noise)...
    assert recovery["drift_induced_loss"] > 0.05
    assert recovery["recovered_fraction"] >= 0.70
    # ...with real promoted hot swaps observed on the version counters...
    assert recovery["swap_count"] >= 1
    assert any(int(v) > 0 for v in recovery["model_versions"].values())
    # ...and zero request failures: swaps are invisible to traffic.
    assert recovery["request_failures_with_loop"] == 0

    # Hot swapping at 200 Hz costs almost nothing on the serve path: the
    # reference swap is an attribute assignment at a batch boundary
    # (measured ~1.0x; asserted loosely for loaded CI machines).
    assert overhead["swaps_during_run"] >= 5
    assert overhead["swapping_failed"] == 0
    assert overhead["throughput_ratio"] >= 0.5

    payload = json.loads(json_result_path(result.experiment).read_text())
    assert payload["data"]["recovery"]["recovered_fraction"] == (
        recovery["recovered_fraction"])
