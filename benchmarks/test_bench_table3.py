"""Table 3 benchmark: HERQULES accuracy vs readout duration.

Paper: F5Q 0.927 @1us, 0.914 @750ns, 0.819 @500ns — trained at 1us only.
"""

from repro.experiments import DEFAULT_CONFIG, run_table3

from conftest import run_once


def test_bench_table3(benchmark, record_result):
    result = run_once(benchmark, lambda: run_table3(DEFAULT_CONFIG))
    record_result(result)

    f5q = result.column("F5Q")
    durations = result.column("duration")
    assert durations == ["1000ns", "750ns", "500ns"]
    # Monotone degradation with truncation.
    assert f5q[0] >= f5q[1] >= f5q[2]
    # 750ns costs only a little (paper: -1.3%); 500ns costs much more.
    assert f5q[0] - f5q[1] < 0.05
    assert f5q[1] - f5q[2] > f5q[0] - f5q[1]


def test_qubit5_reads_fastest(record_result):
    """Paper: qubit 5 can be read out twice as fast without a significant
    accuracy drop."""
    result = run_table3(DEFAULT_CONFIG)
    drop_q5 = result.rows[0][5] - result.rows[2][5]
    drops = [result.rows[0][1 + q] - result.rows[2][1 + q] for q in range(5)]
    assert drop_q5 <= sorted(drops)[2]  # among the smallest degradations
