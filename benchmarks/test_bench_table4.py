"""Table 4 + Figs 4c/7d/14a benchmarks: FPGA latency and resources.

Paper: HERQULES needs <8% of a xczu7ev and tens of cycles; the baseline FNN
needs 2-5x the whole device and thousands of cycles.
"""

import pytest

from repro.experiments import (DEFAULT_CONFIG, run_fig4c, run_fig7d,
                               run_fig14a, run_table4)

from conftest import run_once


def test_bench_table4(benchmark, record_result):
    result = run_once(benchmark, lambda: run_table4(DEFAULT_CONFIG))
    record_result(result)

    luts = dict(zip(result.column("design"), result.column("lut_percent")))
    cycles = dict(zip(result.column("design"),
                      result.column("latency_cycles")))

    assert luts["herqules (RF=4)"] == pytest.approx(7.79, abs=0.5)
    assert luts["baseline (RF=200)"] == pytest.approx(468.64, rel=0.10)
    assert luts["baseline (RF=500)"] == pytest.approx(266.86, rel=0.10)
    assert luts["baseline (RF=1000)"] == pytest.approx(216.72, rel=0.10)
    assert cycles["baseline (RF=1000)"] == pytest.approx(4023, rel=0.10)
    assert cycles["baseline (RF=200)"] / cycles["herqules (RF=4)"] > 10


def test_bench_fig7d(record_result):
    result = run_fig7d(DEFAULT_CONFIG)
    record_result(result)
    mf_nn, mf_rmf_nn = result.column("lut_percent")
    assert mf_nn < mf_rmf_nn < mf_nn + 1.0  # RMFs cost well under 1% LUT


def test_bench_fig14a(record_result):
    result = run_fig14a(DEFAULT_CONFIG)
    record_result(result)
    util = dict(zip(result.column("resource"), result.column("percent")))
    assert util["LUT"] < 10
    assert util["FF"] < 2
    assert util["BRAM"] < 5
    assert result.data["max_qubits_rfsoc"] > 50  # paper: >50 qubits/RFSoC


def test_bench_fig4c(record_result):
    result = run_fig4c(DEFAULT_CONFIG)
    record_result(result)
    util = dict(zip(result.column("resource"), result.column("percent")))
    assert 300 < util["LUT"] < 500  # paper: ~4x the device
