"""Table 2 benchmark: cross-fidelity (readout crosstalk) by distance.

Paper: the neural network suppresses nearest-neighbour crosstalk roughly
3x compared to the plain mf design.
"""

from repro.experiments import DEFAULT_CONFIG, run_table2

from conftest import run_once


def test_bench_table2(benchmark, record_result):
    result = run_once(benchmark, lambda: run_table2(DEFAULT_CONFIG))
    record_result(result)

    rows = {row[0]: row[1:] for row in result.rows}
    # Crosstalk magnitudes stay small for every design...
    for design, values in rows.items():
        assert all(v < 0.08 for v in values), design
    # ...and nearest-neighbour (|i-j|=1) crosstalk is the dominant bucket
    # for the plain mf design.
    assert rows["mf"][0] >= max(rows["mf"][2], rows["mf"][3]) - 1e-3
