#!/usr/bin/env python
"""Regenerate committed benchmark baselines — only if they pass the gate.

The repository carries its perf/fidelity trail in committed
``benchmarks/results/bench_*.json`` files, diffed by
``compare_results.py`` on every CI run. That trail is only as good as
the baselines: committing one noisy run (loaded host, unlucky scheduler
draw) silently ratchets the quality floor down and masks the next real
regression. This script is the supported way to refresh baselines::

    PYTHONPATH=src python benchmarks/refresh_baselines.py

It re-runs the benchmark suite, then diffs the fresh results against the
currently committed baselines. When the gate passes, the fresh files are
left in the working tree ready to commit; when any tracked metric
regressed beyond the threshold, the tracked result files are restored
from git and the script exits 1 — a regressed baseline never lands by
default. Pass ``--keep-on-fail`` to keep the failing files for
inspection (they are *not* safe to commit), ``--pytest-args`` to narrow
the rerun (e.g. ``--pytest-args benchmarks/test_bench_serve.py``), and
any ``compare_results`` flag after ``--``.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

import compare_results

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def _run_benchmarks(pytest_args) -> int:
    command = [sys.executable, "-m", "pytest", "-q"]
    command += pytest_args if pytest_args else ["benchmarks"]
    print(f"$ {' '.join(command)}")
    return subprocess.run(command, cwd=REPO_ROOT).returncode


def _restore_tracked_results() -> None:
    subprocess.run(
        ["git", "checkout", "--", str(RESULTS_DIR.relative_to(REPO_ROOT))],
        cwd=REPO_ROOT, check=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep-on-fail", action="store_true",
                        help="leave failing fresh results in the working "
                             "tree instead of restoring the committed ones")
    parser.add_argument("--skip-run", action="store_true",
                        help="gate existing fresh results without re-running "
                             "the benchmark suite")
    parser.add_argument("--pytest-args", nargs="+", default=None,
                        metavar="ARG",
                        help="arguments for the pytest rerun "
                             "(default: benchmarks)")
    parser.add_argument("compare_args", nargs="*",
                        help="extra flags forwarded to compare_results "
                             "(after --)")
    args = parser.parse_args(argv)

    if not args.skip_run:
        code = _run_benchmarks(args.pytest_args)
        if code != 0:
            print(f"benchmark run failed (exit {code}); "
                  f"baselines untouched", file=sys.stderr)
            return code

    gate = compare_results.main(list(args.compare_args))
    if gate == 0:
        print("\ngate passed — fresh baselines kept; review `git diff "
              "benchmarks/results` and commit them")
        return 0
    if args.keep_on_fail:
        print("\ngate FAILED — fresh results kept for inspection "
              "(--keep-on-fail); do not commit them", file=sys.stderr)
    else:
        _restore_tracked_results()
        print("\ngate FAILED — committed baselines restored. Rerun on an "
              "idle host, or fix the regression before refreshing.",
              file=sys.stderr)
    return gate


if __name__ == "__main__":
    sys.exit(main())
