"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure at the default experiment
scale, times it with pytest-benchmark (single round — these are minutes-long
experiments, not microbenchmarks), asserts the paper's qualitative claims,
and writes the rendered table to ``benchmarks/results/`` — as a text
snapshot plus a machine-readable ``bench_*.json`` with the measured numbers
so the perf trajectory can be tracked across PRs.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--profile", action="store_true", default=False,
        help="capture cProfile dumps of the serve hot paths (dispatcher "
             "thread + client submit path) into benchmarks/results/")


@pytest.fixture(scope="session")
def profile_mode(request) -> bool:
    """True when the run should also capture hot-path cProfile dumps."""
    return bool(request.config.getoption("--profile"))


def json_result_path(experiment: str) -> pathlib.Path:
    """Where a benchmark's machine-readable numbers land."""
    stem = (experiment if experiment.startswith("bench_")
            else f"bench_{experiment}")
    return RESULTS_DIR / f"{stem}.json"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write an ExperimentResult next to the benchmarks (.txt + .json)."""

    def _record(result):
        path = results_dir / f"{result.experiment}.txt"
        path.write_text(result.to_text() + "\n")
        json_result_path(result.experiment).write_text(
            json.dumps(result.to_json_dict(), indent=2, sort_keys=True,
                       allow_nan=False)
            + "\n")
        print()
        print(result.to_text())
        return path

    return _record


def run_once(benchmark, fn):
    """Run a whole experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
