"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure at the default experiment
scale, times it with pytest-benchmark (single round — these are minutes-long
experiments, not microbenchmarks), asserts the paper's qualitative claims,
and writes the rendered table to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write an ExperimentResult's text rendering next to the benchmarks."""

    def _record(result):
        path = results_dir / f"{result.experiment}.txt"
        path.write_text(result.to_text() + "\n")
        print()
        print(result.to_text())
        return path

    return _record


def run_once(benchmark, fn):
    """Run a whole experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
