"""Fig 12 benchmark: normalized NISQ benchmark fidelity.

Paper: normalized fidelities between 1.03 and 1.32 with mean 1.118; the
20-qubit Bernstein-Vazirani benchmark improves the most.
"""

import pytest

from repro.experiments import DEFAULT_CONFIG, PAPER_FIG12, run_fig12

from conftest import run_once


def test_bench_fig12(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig12(DEFAULT_CONFIG))
    record_result(result)

    normalized = dict(zip(result.column("benchmark"),
                          result.column("normalized")))

    # Every benchmark improves; mean improvement in the paper's band.
    assert all(v > 1.0 for v in normalized.values())
    assert result.data["mean_normalized"] == pytest.approx(1.118, abs=0.06)

    # The BV series grows with width, and bv-20 improves the most overall.
    assert normalized["bv-5"] < normalized["bv-10"] < normalized["bv-15"] \
        < normalized["bv-20"]
    assert normalized["bv-20"] == max(normalized.values())

    # Per-benchmark agreement with the paper within 10%.
    for name, paper_value in PAPER_FIG12.items():
        assert normalized[name] == pytest.approx(paper_value, rel=0.12), name
