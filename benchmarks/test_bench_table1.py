"""Table 1 benchmark: per-qubit accuracy of every design (incl. baseline).

Paper reference (F5Q): mf 0.892, mf-svm 0.892, mf-nn 0.896, baseline 0.912,
mf-rmf-svm 0.923, mf-rmf-nn 0.927.
"""

import pytest

from repro.experiments import DEFAULT_CONFIG, run_table1

from conftest import run_once


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(DEFAULT_CONFIG)


def test_bench_table1(benchmark, record_result):
    result = run_once(benchmark,
                      lambda: run_table1(DEFAULT_CONFIG))
    record_result(result)

    by_design = dict(zip(result.column("design"), result.column("F5Q")))

    # Headline claim: the full HERQULES design beats every non-RMF design.
    assert by_design["mf-rmf-nn"] > by_design["mf"]
    assert by_design["mf-rmf-nn"] > by_design["mf-nn"]
    assert by_design["mf-rmf-nn"] > by_design["baseline"]
    # RMF is the ingredient that matters: both RMF designs beat both
    # MF-only learned designs.
    assert min(by_design["mf-rmf-svm"], by_design["mf-rmf-nn"]) \
        > max(by_design["mf-svm"], by_design["mf-nn"]) - 0.002
    # Absolute scale in the paper's neighbourhood.
    assert 0.85 < by_design["mf-rmf-nn"] < 0.97


def test_weak_qubit_profile(table1_result):
    """Qubit 2 is the accuracy bottleneck for every design (paper: ~0.75)."""
    for row in table1_result.rows:
        per_qubit = row[1:6]
        assert min(per_qubit) == per_qubit[1]
        assert per_qubit[1] < 0.9
