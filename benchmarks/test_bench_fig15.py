"""Fig 15 benchmark: training-set size sensitivity of mf-rmf-nn.

Paper: accuracy rises with the training-set size and saturates; the gain
from ~1.5k to 9.75k traces is under 1%.
"""

from repro.experiments import DEFAULT_CONFIG, run_fig15

from conftest import run_once


def test_bench_fig15(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig15(DEFAULT_CONFIG))
    record_result(result)

    sizes = result.column("n_train")
    f5q = result.column("F5Q")
    assert sizes == sorted(sizes)

    # Largest training set within noise of the best result (saturation)...
    assert f5q[-1] >= max(f5q) - 0.01
    # ...and clearly better than the smallest.
    assert f5q[-1] >= f5q[0] - 0.005
    # The final-size gain over the mid-size point is small (saturation).
    assert f5q[-1] - f5q[len(f5q) // 2] < 0.03
