"""Table 5 benchmark: training time per design.

Paper (312k traces, 32-core EPYC): baseline 38 min >> mf-rmf-nn 19 min >
mf-nn 17 min >> mf 3 min. At our synthetic scale, absolute times shrink but
the ordering must hold: baseline slowest by a wide margin, mf fastest.
"""

from repro.experiments import DEFAULT_CONFIG, run_table5

from conftest import run_once


def test_bench_table5(benchmark, record_result):
    result = run_once(benchmark, lambda: run_table5(DEFAULT_CONFIG))
    record_result(result)

    timings = result.data["timings"]
    assert timings["baseline"] > timings["mf-rmf-nn"]
    assert timings["baseline"] > 3 * timings["mf"]
    assert timings["mf"] < timings["mf-nn"]
