#!/usr/bin/env python
"""Flag benchmark regressions: fresh ``bench_*.json`` vs committed baselines.

Every benchmark writes machine-readable numbers to
``benchmarks/results/bench_*.json``; those files are committed, so the
repository itself carries the perf/fidelity trail. After a fresh benchmark
run (``pytest benchmarks/``) this script diffs the regenerated files
against the committed baselines and fails when a tracked quality metric
dropped by more than ``--max-regression`` (fractional, default 0.4).

Only *machine-portable, higher-is-better* metrics are compared by default —
speedup ratios, fidelities/accuracies, recovery/sharing fractions, and the
serve bench's tracing-overhead ratios (traced vs untraced throughput on
the same host in the same run, so the ratio travels even though the raw
throughputs don't). Raw
throughput numbers (traces/s) vary wildly across machines and are opt-in
via ``--include-absolute``; latency percentiles are never compared.
Shard-scaling ratios under a ``data.scaling`` block and hot-path ratios
under ``data.dispatch`` (slab reuse, ring coalescing) are portable only
between hosts with the same parallelism, so they are compared **only when
both payloads record the same ``scaling.cpus``** — a baseline regenerated
on an 8-core box must not fail a 4-core runner for lacking cores.
``scaling.*`` speedups additionally require **at least
``MIN_SCALING_CPUS`` usable cores on both sides**: the serve bench's own
headline assertion (``process_speedup_4shards >= 1.5``) only applies on
>= 4 cores, and below that the sweep measures scheduler contention, not
parallel scaling, so a noisy low-core run must neither trip the gate nor
ratchet the committed baseline.

Usage::

    python benchmarks/compare_results.py                  # vs git HEAD
    python benchmarks/compare_results.py --baseline-dir saved_results/
    python benchmarks/compare_results.py --max-regression 0.2

Exit status: 0 when clean, 1 when any regression exceeds the threshold.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: Metric-name substrings tracked by default (higher is better, portable
#: across machines).
QUALITY_PATTERNS = ("speedup", "fidelity", "accuracy", "recovered_fraction",
                    "sharing_ratio", "throughput_ratio", "reuse_ratio",
                    "coalesce_ratio", "overhead_ratio", "quiet_ratio")

#: Machine-dependent higher-is-better metrics, compared only with
#: ``--include-absolute``.
ABSOLUTE_PATTERNS = ("_tps", "traces_per_s", "throughput_rps")

#: Metrics whose movement is not a quality signal (e.g. the deliberately
#: degraded no-recalibration/no-worker arms of the drift experiments, or
#: dispatch-lag timings that swing with machine load).
EXCLUDE_PATTERNS = ("no_recal", "no_worker", "p50", "p95", "p99", "latency",
                    "lag", "fallback")

#: How deep into nested ``data`` dicts metrics are collected.
MAX_DEPTH = 3

#: Minimum ``scaling.cpus`` (on both payloads) for ``scaling.*`` shard
#: speedups to be gated; with fewer cores there is nothing to scale onto
#: and the ratios are scheduler noise.
MIN_SCALING_CPUS = 4


@dataclass(frozen=True)
class Regression:
    """One tracked metric that dropped beyond the threshold."""

    file: str
    metric: str
    baseline: float
    current: float

    @property
    def drop_fraction(self) -> float:
        return (self.baseline - self.current) / abs(self.baseline)

    def __str__(self) -> str:
        return (f"{self.file}: {self.metric} regressed "
                f"{100 * self.drop_fraction:.1f}% "
                f"({self.baseline:.4g} -> {self.current:.4g})")


def _walk(data, prefix: str = "",
          depth: int = 0) -> Iterator[Tuple[str, float]]:
    if depth > MAX_DEPTH or not isinstance(data, dict):
        return
    for key, value in data.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            yield path, float(value)
        elif isinstance(value, dict):
            yield from _walk(value, path, depth + 1)


def comparable_metrics(payload: dict,
                       include_absolute: bool = False) -> Dict[str, float]:
    """Tracked metrics of one ``bench_*.json`` payload, by dotted path."""
    patterns = QUALITY_PATTERNS
    if include_absolute:
        patterns = patterns + ABSOLUTE_PATTERNS
    metrics = {}
    for path, value in _walk(payload.get("data", {})):
        name = path.lower()
        if any(pattern in name for pattern in EXCLUDE_PATTERNS):
            continue
        if any(pattern in name for pattern in patterns):
            metrics[path] = value
    return metrics


def _scaling_cpus(payload: dict) -> Optional[float]:
    """The parallelism context a ``data.scaling`` block was measured on."""
    scaling = payload.get("data", {}).get("scaling")
    if isinstance(scaling, dict):
        cpus = scaling.get("cpus")
        if isinstance(cpus, (int, float)):
            return float(cpus)
    return None


def compare_payloads(baseline: dict, current: dict, *, file: str,
                     max_regression: float,
                     include_absolute: bool = False) -> List[Regression]:
    """Regressions of ``current`` vs ``baseline`` beyond the threshold.

    Metrics missing from either side are skipped (new benchmarks and
    retired metrics are not regressions); a sign flip or a drop of more
    than ``max_regression`` of the baseline magnitude is flagged.
    ``scaling.*`` and ``dispatch.*`` metrics are additionally skipped when
    the two payloads were measured on different ``scaling.cpus`` —
    parallel-scaling speedups and hot-path ratios (slab reuse, ring
    coalescing track how hard the dispatcher was backlogged) only regress
    meaningfully against a baseline from equal hardware. ``scaling.*``
    speedups are further skipped when either side had fewer than
    ``MIN_SCALING_CPUS`` usable cores: without cores to scale onto the
    shard sweep measures scheduler contention, so those ratios neither
    gate nor serve as a meaningful baseline.
    """
    base_metrics = comparable_metrics(baseline, include_absolute)
    curr_metrics = comparable_metrics(current, include_absolute)
    base_cpus = _scaling_cpus(baseline)
    curr_cpus = _scaling_cpus(current)
    cpus_differ = base_cpus != curr_cpus
    cpus_too_few = any(cpus is not None and cpus < MIN_SCALING_CPUS
                       for cpus in (base_cpus, curr_cpus))
    regressions = []
    for metric, base_value in base_metrics.items():
        if metric not in curr_metrics or base_value == 0:
            continue
        if cpus_differ and metric.startswith(("scaling.", "dispatch.")):
            continue
        if cpus_too_few and metric.startswith("scaling."):
            continue
        regression = Regression(file=file, metric=metric,
                                baseline=base_value,
                                current=curr_metrics[metric])
        if regression.drop_fraction > max_regression:
            regressions.append(regression)
    return regressions


def _baseline_from_git(rev: str, path: pathlib.Path,
                       repo_root: pathlib.Path) -> Optional[dict]:
    relative = path.resolve().relative_to(repo_root.resolve())
    result = subprocess.run(
        ["git", "show", f"{rev}:{relative.as_posix()}"],
        capture_output=True, text=True, cwd=repo_root)
    if result.returncode != 0:
        return None              # new benchmark: no committed baseline yet
    return json.loads(result.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results-dir", type=pathlib.Path,
                        default=pathlib.Path(__file__).parent / "results",
                        help="directory with freshly emitted bench_*.json")
    parser.add_argument("--baseline-dir", type=pathlib.Path, default=None,
                        help="directory of baseline bench_*.json "
                             "(default: read them from git)")
    parser.add_argument("--baseline-git", default="HEAD",
                        help="git rev to read baselines from (default HEAD)")
    parser.add_argument("--max-regression", type=float, default=0.4,
                        help="tolerated fractional drop per metric "
                             "(default 0.4)")
    parser.add_argument("--include-absolute", action="store_true",
                        help="also compare machine-dependent throughput")
    args = parser.parse_args(argv)
    if args.max_regression <= 0:
        parser.error("--max-regression must be positive")

    fresh = sorted(args.results_dir.glob("bench_*.json"))
    if not fresh:
        print(f"no bench_*.json under {args.results_dir}; "
              f"run the benchmarks first", file=sys.stderr)
        return 2

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    regressions: List[Regression] = []
    compared = skipped = 0
    for path in fresh:
        if args.baseline_dir is not None:
            baseline_path = args.baseline_dir / path.name
            baseline = (json.loads(baseline_path.read_text())
                        if baseline_path.exists() else None)
        else:
            baseline = _baseline_from_git(args.baseline_git, path, repo_root)
        if baseline is None:
            skipped += 1
            print(f"{path.name}: no baseline, skipped")
            continue
        compared += 1
        regressions.extend(compare_payloads(
            baseline, json.loads(path.read_text()), file=path.name,
            max_regression=args.max_regression,
            include_absolute=args.include_absolute))

    print(f"compared {compared} benchmark files ({skipped} without "
          f"baselines), threshold {100 * args.max_regression:.0f}%")
    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print("no tracked metric regressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
