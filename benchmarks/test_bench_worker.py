"""Background-worker benchmark: per-shard async recovery under traffic.

Asserts the deployment-shaped claims of the ``async_recovery`` experiment
(a :class:`~repro.calib.CalibrationWorker` maintenance thread over a live
two-shard server, drift injected into one shard only):

* the worker recovers >= 70% of the drift-induced fidelity loss on the
  drifting shard relative to the no-worker arm replaying identical
  traffic seeds;
* the repair is surgical: the drifting shard's model version bumps, the
  healthy shard is never refit and its per-window fidelity never dips
  beyond statistical noise;
* traffic never stops: zero failed requests in either arm, zero worker
  refit/probe errors.

Measured numbers land in ``benchmarks/results/bench_worker.json`` and are
regression-gated by ``benchmarks/compare_results.py``.
"""

import json

from repro.experiments import run_experiment
from repro.experiments.results import ExperimentResult

from conftest import json_result_path, run_once

#: Healthy-shard fidelity slack: min-over-windows vs baseline mean on
#: ~100-trace windows is a few sigma of binomial noise, not a dip.
HEALTHY_DIP_TOLERANCE = 0.05


def run_bench_worker() -> ExperimentResult:
    recovery = run_experiment("async_recovery")
    summary = recovery.data["summary"]

    return ExperimentResult(
        experiment="bench_worker",
        title=("Continuous background recalibration: per-shard async "
               "drift recovery under live traffic"),
        headers=["metric", "value"],
        rows=[
            ["pre_drift_fidelity", summary["pre_drift_fidelity"]],
            ["no_worker_fidelity", summary["no_worker_fidelity"]],
            ["with_worker_fidelity", summary["with_worker_fidelity"]],
            ["recovered_fraction", summary["recovered_fraction"]],
            ["healthy_shard_min_fidelity",
             summary["healthy_shard_min_fidelity"]],
            ["drifting_shard_versions", summary["drifting_shard_versions"]],
            ["healthy_shard_versions", summary["healthy_shard_versions"]],
            ["request_failures", summary["request_failures_with_worker"]],
            ["probe_traces", summary["probe_traces"]],
        ],
        notes=(f"worker arm: {summary['worker']['promotions']} promotion(s) "
               f"from {summary['worker']['refits']} refit(s), "
               f"{summary['worker']['probe_batches']} probe batches "
               f"({summary['probe_traces']} traces) at duty cycle; "
               f"versions {summary['model_versions']}"),
        data={"summary": summary},
    )


def test_bench_worker(benchmark, record_result):
    result = run_once(benchmark, run_bench_worker)
    record_result(result)
    summary = result.data["summary"]
    worker = summary["worker"]

    # Acceptance: the worker recovers >= 70% of the drift-induced loss on
    # the drifting shard (measured ~93%; the bound leaves room for
    # scheduler noise in the asynchronous detection latency)...
    assert summary["drift_induced_loss"] > 0.05
    assert summary["recovered_fraction"] >= 0.70
    # ...surgically: the drifting shard was promoted at least once, the
    # healthy shard was never refit and saw no fidelity dip...
    assert summary["drifting_shard_versions"] >= 1
    assert summary["healthy_shard_versions"] == 0
    assert summary["healthy_shard_dip"] <= HEALTHY_DIP_TOLERANCE
    # ...and with zero downtime: no request failed in either arm, and the
    # worker itself never errored.
    assert summary["request_failures_with_worker"] == 0
    assert summary["request_failures_no_worker"] == 0
    assert summary["server_failed_requests"] == 0
    assert worker["refit_errors"] == 0
    assert worker["probe_errors"] == 0
    assert worker["tick_errors"] == 0
    # Probes actually rode the live serve path at the duty cycle.
    assert worker["probe_batches"] >= 1
    assert summary["probe_traces"] > 0

    payload = json.loads(json_result_path(result.experiment).read_text())
    assert payload["data"]["summary"]["recovered_fraction"] == (
        summary["recovered_fraction"])
