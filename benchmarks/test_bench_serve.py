"""Serving benchmark: micro-batching wins and multi-process shard scaling.

Part 1 — micro-batching (unchanged since PR 2): serves the five MF-based
Table 1 designs three ways over the same fitted pipelines:

* ``per-request designs`` — the pre-serve caller experience: every single-
  trace request runs one ``predict_bits`` call per design;
* ``per-request engine``  — one shared-feature engine call per request
  (features shared across designs, but nothing batched across requests);
* ``served``              — the micro-batching :class:`~repro.serve.ReadoutServer`
  under a 32-client closed loop: requests coalesce into engine batches,
  amortizing per-call overhead across every request in flight.

Part 2 — shard scaling: the same five designs served at 1/2/4 feedline
shards on both execution backends, each config measured as the median of
``SCALING_REPEATS`` closed-loop runs (single draws are too noisy for the
regression-gated speedup ratios). Thread shards share the GIL (the curve
plateaus); process shards are spawned workers fed through shared-memory
rings, so their curve follows the host's cores. The headline metric is
``process_speedup_4shards`` (4-shard vs 1-shard process throughput) —
asserted ``>= 1.5`` wherever the runner actually has >= 4 usable cores,
recorded (and regression-gated via ``compare_results.py``) everywhere.
Since the per-shard dispatch rework, ``thread_speedup_2shards`` carries
the same ``>= 1.5`` bar on >= 4 cores: NumPy kernels drop the GIL, so
two thread shards scale once nothing serializes on the dispatcher.

Every swept config also reports a ``data["dispatch"]`` hot-path health
block (dispatch lag percentiles, slab reuse, ring coalescing); run with
``--profile`` to additionally dump cProfile captures of the dispatcher
thread and the client submit path into the results dir.

Part 3 — observability cost: the same single-shard serving workload on
four identical servers — tracing off, every request traced
(``trace_sample_rate=1.0``), continuous telemetry+alerting at a 20 ms
interval, and off again — interleaved repeats, medians.
``data["obs"]["span_overhead_ratio"]`` (traced / baseline throughput) and
``sampler_overhead_ratio`` (telemetry / baseline) are the headlines: both
must stay ~1.0 (spans are cheap perf_counter pairs; the sampler polls off
the hot path), and the trailing off arm (``span_overhead_ratio_off``)
separates real instrumentation cost from machine drift between arms. The
telemetry arm also counts default-rule alert firings under this clean
load — ``alert_false_positives`` must be 0 (gated through
``alert_quiet_ratio``). The bench preamble also runs
``ReadoutServer.healthcheck`` and records its per-shard verdicts, so a
sick runner fails loudly before any numbers are published.

Part 4 — the network front end: the same single-shard serving workload
driven in-process and over localhost TCP through
:class:`~repro.net.ReadoutService` / :class:`~repro.net.ReadoutClient`,
interleaved repeats, medians. ``data["net"]["net_overhead_ratio"]``
(TCP / in-process single-client closed-loop throughput) is the headline
— it prices the whole frame-encode → socket → decode → submit →
encode-back path relative to calling ``submit()`` directly, and
regression-gates via ``compare_results.py``'s ``overhead_ratio``
pattern. A multi-client TCP run reports the served-over-TCP p99 under
concurrency, and the service's ``net.*`` counters must reconcile
(every admitted request answered, zero protocol errors).
"""

import cProfile
import io
import json
import pstats
import time

import numpy as np

from repro.core import FAST_CONFIG, make_design
from repro.engine import ReadoutEngine
from repro.experiments.results import ExperimentResult
from repro.net import ReadoutService
from repro.readout import five_qubit_paper_device, generate_dataset
from repro.serve import (ReadoutServer, ServeShard, ServerConfig,
                        closed_loop, fit_serve_shards, network_closed_loop)
from repro.serve.procshard import scaling_summary
from repro.readout.sharding import plan_feedlines

from conftest import json_result_path, run_once

MF_DESIGNS = ("mf", "mf-svm", "mf-nn", "mf-rmf-svm", "mf-rmf-nn")
SHOTS_PER_STATE = 40
SEED = 42
N_NAIVE_REQUESTS = 600
N_CLIENTS = 64
REQUESTS_PER_CLIENT = 25

#: Shard counts swept by the backend-scaling section. The workload is
#: deliberately chunky (many traces per request, deep batches) so shard
#: compute — not per-batch IPC — dominates: that is the regime where
#: process shards can show parallel speedup on multi-core runners.
SCALING_SHARDS = (1, 2, 4)
SCALING_CLIENTS = 16
SCALING_REQUESTS_PER_CLIENT = 10
SCALING_TRACES_PER_REQUEST = 32
SCALING_MAX_BATCH_TRACES = 512
#: Closed-loop repeats per swept config; the recorded throughput is the
#: median. ``scaling.*`` speedups are regression-gated by
#: ``compare_results.py``, and a single draw of a 5-second closed loop
#: swings enough with scheduler load to trip the gate on an otherwise
#: healthy tree — the median absorbs one bad draw without hiding a real
#: regression (which shifts all repeats).
SCALING_REPEATS = 3

#: Span-overhead arms: lighter than the headline closed loop (the point
#: is the per-request delta, so single-trace requests maximize the span
#: count per unit of compute) but long enough for stable medians.
OBS_CLIENTS = 16
OBS_REQUESTS_PER_CLIENT = 20
OBS_REPEATS = 5

#: Network arms: single-client closed loops are RTT-bound, so the
#: request counts stay small; the multi-client run sizes the p99 sample.
NET_REQUESTS = 120
NET_REPEATS = 3
NET_MULTI_CLIENTS = 8
NET_MULTI_REQUESTS_PER_CLIENT = 30


def _span_overhead(designs, device, test):
    """Throughput cost of tracing and telemetry, measured A/B/B'/A.

    Four identical single-shard servers — sampling off, every request
    traced, continuous telemetry+alerting at a 20 ms interval, off
    again — driven in interleaved repeat rounds. The reported ratios
    are *medians of per-round ratios*: within one round the arms run
    back to back, so a slow frequency/load drift across the measurement
    cancels out of each round's quotient instead of polluting a
    cross-arm median. ``span_overhead_ratio`` is traced/baseline
    throughput; ``sampler_overhead_ratio`` is telemetry/baseline (the
    monitoring loop must be ~free); ``span_overhead_ratio_off`` (second
    off arm / first) is the noise floor — when it strays from 1.0 the
    machine moved within rounds, and the other ratios carry the same
    uncertainty. The telemetry arm also reports how often the default
    alert rules fired under this clean load — any firing is a false
    positive (``alert_quiet_ratio`` gates it as 1.0 = silent).
    """
    [feedline] = plan_feedlines(test.n_qubits, 1)

    def make_server(rate, **kwargs):
        return ReadoutServer(
            [ServeShard(feedline=feedline, engine=ReadoutEngine(designs),
                        device=device)],
            ServerConfig(max_batch_traces=512, max_wait_ms=1.0,
                         trace_sample_rate=rate, **kwargs))

    arms = {"off": make_server(0.0), "traced": make_server(1.0),
            "telemetry": make_server(0.0, telemetry_interval_s=0.02),
            "off_again": make_server(0.0)}
    tps = {name: [] for name in arms}
    try:
        for repeat in range(OBS_REPEATS):
            for name, server in arms.items():
                run = closed_loop(server, test, n_clients=OBS_CLIENTS,
                                  requests_per_client=OBS_REQUESTS_PER_CLIENT,
                                  traces_per_request=1, seed=SEED + 7 + repeat)
                if run.failed or run.rejected:
                    raise RuntimeError(
                        f"degraded overhead run ({name}, repeat {repeat}: "
                        f"{run.failed} failed, {run.rejected} rejected)")
                tps[name].append(run.traces_per_s())
        recorded = arms["traced"].flight_recorder.recorded
        telemetry_arm = arms["telemetry"]
        telemetry_samples = telemetry_arm.telemetry.samples
        alert_false_positives = telemetry_arm.alerts.total_fired()
    finally:
        for server in arms.values():
            server.stop()
    # stop() runs one final telemetry tick; count fires after it too so a
    # rule tripped by shutdown itself would still register as a false
    # positive here.
    alert_false_positives = max(alert_false_positives,
                                telemetry_arm.alerts.total_fired())
    median = {name: float(np.median(values)) for name, values in tps.items()}
    per_round = {
        name: float(np.median([a / b for a, b in zip(tps[name], tps["off"])]))
        for name in ("traced", "telemetry", "off_again")
    }
    return {
        "baseline_tps": median["off"],
        "traced_tps": median["traced"],
        "span_overhead_ratio": per_round["traced"],
        "sampler_overhead_ratio": per_round["telemetry"],
        "span_overhead_ratio_off": per_round["off_again"],
        "trace_sample_rate": 1.0,
        "recorded_traces": recorded,
        "telemetry_samples": telemetry_samples,
        "alert_false_positives": alert_false_positives,
        # Gate-friendly encoding of "zero false positives": 1.0 when the
        # default rules stayed silent under clean load, 0.0 otherwise
        # (compare_results.py treats *_ratio drops as regressions).
        "alert_quiet_ratio": 1.0 if alert_false_positives == 0 else 0.0,
    }


def _net_front_end(designs, device, test):
    """Price the TCP front end against direct ``submit()`` calls.

    One single-shard server fronted by a :class:`ReadoutService` on
    localhost; the identical seeded single-client closed-loop workload
    runs in-process and over TCP in interleaved repeat rounds (the same
    drift-cancelling scheme as the observability arms), and
    ``net_overhead_ratio`` is the median per-round TCP/in-process
    throughput quotient. A separate multi-client TCP run reports the
    p50/p99 a remote caller actually sees under concurrency. Both runs
    must finish clean — a reject or failure means the numbers lie.
    """
    [feedline] = plan_feedlines(test.n_qubits, 1)
    server = ReadoutServer(
        [ServeShard(feedline=feedline, engine=ReadoutEngine(designs),
                    device=device)],
        ServerConfig(max_batch_traces=512, max_wait_ms=1.0))
    inproc_tps, tcp_tps = [], []
    with server, ReadoutService(server) as service:
        for repeat in range(NET_REPEATS):
            arms = {}
            arms["inproc"] = closed_loop(
                server, test, n_clients=1,
                requests_per_client=NET_REQUESTS,
                traces_per_request=1, seed=SEED + 20 + repeat)
            arms["tcp"] = network_closed_loop(
                service.address, test, n_clients=1,
                requests_per_client=NET_REQUESTS,
                traces_per_request=1, seed=SEED + 20 + repeat)
            for name, run in arms.items():
                if run.failed or run.rejected:
                    raise RuntimeError(
                        f"degraded net run ({name}, repeat {repeat}: "
                        f"{run.failed} failed, {run.rejected} rejected)")
            inproc_tps.append(arms["inproc"].traces_per_s())
            tcp_tps.append(arms["tcp"].traces_per_s())
        multi = network_closed_loop(
            service.address, test, n_clients=NET_MULTI_CLIENTS,
            requests_per_client=NET_MULTI_REQUESTS_PER_CLIENT,
            traces_per_request=1, seed=SEED + 30)
        if multi.failed or multi.rejected:
            raise RuntimeError(
                f"degraded multi-client net run ({multi.failed} failed, "
                f"{multi.rejected} rejected)")
        net_stats = service.net_stats.snapshot()
    return {
        "inproc_tps": float(np.median(inproc_tps)),
        "tcp_tps": float(np.median(tcp_tps)),
        "net_overhead_ratio": float(np.median(
            [t / i for t, i in zip(tcp_tps, inproc_tps)])),
        "single_client_requests": NET_REQUESTS,
        "multi_clients": NET_MULTI_CLIENTS,
        "multi_client_tps": multi.traces_per_s(),
        "multi_client_p50_ms": multi.latency_ms(50),
        "multi_client_p99_ms": multi.latency_ms(99),
        "net_stats": net_stats,
    }


def _dispatch_metrics(snapshot):
    """The hot-path health subset of a stats snapshot, regression-gated
    through ``compare_results.py`` (lag percentiles are excluded there —
    they swing with machine load; the ratios are the stable signal)."""
    return {
        "dispatch_lag_p50_ms": snapshot["dispatch_lag_p50_ms"],
        "dispatch_lag_p99_ms": snapshot["dispatch_lag_p99_ms"],
        "slab_reuse_ratio": snapshot["slab_reuse_ratio"],
        "ring_coalesce_ratio": snapshot["ring_coalesce_ratio"],
        "trace_slab_fallbacks": snapshot["trace_slab_fallbacks"],
        "response_slab_fallbacks": snapshot["response_slab_fallbacks"],
    }


def profile_hot_paths(results_dir):
    """Capture cProfile dumps of the serve hot paths (``--profile`` only).

    ``cProfile`` only observes the thread it is enabled on, so the
    dispatcher is profiled by wrapping ``ReadoutServer._dispatch_loop`` to
    start a per-thread ``Profile`` inside the dispatcher thread itself; the
    submit path is profiled from this thread driving a tight request loop.
    Artifacts land in the results dir: binary ``.prof`` dumps (for
    ``snakeviz``/``pstats``) plus one human-readable cumulative summary.
    """
    device = five_qubit_paper_device()
    data = generate_dataset(device, 10, np.random.default_rng(SEED))
    train, val, test = data.split(np.random.default_rng(SEED + 1), 0.5, 0.1)
    designs = {"mf": make_design("mf", FAST_CONFIG).fit(train, val)}
    [feedline] = plan_feedlines(test.n_qubits, 1)

    dispatch_profiles = []
    original_loop = ReadoutServer._dispatch_loop

    def profiled_loop(self):
        profile = cProfile.Profile()
        dispatch_profiles.append(profile)
        profile.enable()
        try:
            original_loop(self)
        finally:
            profile.disable()

    submit_profile = cProfile.Profile()
    ReadoutServer._dispatch_loop = profiled_loop
    try:
        server = ReadoutServer(
            [ServeShard(feedline=feedline, engine=ReadoutEngine(designs),
                        device=device)],
            ServerConfig(max_batch_traces=128, max_wait_ms=0.5))
        with server:
            futures = []
            submit_profile.enable()
            for i in range(500):
                futures.append(
                    server.submit(test.demod[i % test.n_traces][None]))
            submit_profile.disable()
            for future in futures:
                future.result(timeout=60.0)
    finally:
        ReadoutServer._dispatch_loop = original_loop

    profiles = {"bench_serve_submit": submit_profile}
    for i, profile in enumerate(dispatch_profiles):
        profiles[f"bench_serve_dispatch_{i}"] = profile
    sections = []
    for name, profile in profiles.items():
        profile.dump_stats(str(results_dir / f"{name}.prof"))
        stream = io.StringIO()
        pstats.Stats(profile, stream=stream).sort_stats(
            "cumulative").print_stats(25)
        sections.append(f"== {name} ==\n{stream.getvalue()}")
    summary = results_dir / "bench_serve_profile.txt"
    summary.write_text("\n".join(sections))
    return summary


def run_bench_serve() -> ExperimentResult:
    device = five_qubit_paper_device()
    data = generate_dataset(device, SHOTS_PER_STATE,
                            np.random.default_rng(SEED))
    train, val, test = data.split(np.random.default_rng(SEED + 1), 0.5, 0.1)

    designs = {name: make_design(name, FAST_CONFIG).fit(train, val)
               for name in MF_DESIGNS}
    rows = np.random.default_rng(SEED + 2).integers(
        0, test.n_traces, N_NAIVE_REQUESTS)

    # Path 1: one predict_bits call per design per single-trace request.
    start = time.perf_counter()
    for i in rows:
        one = test.subset(np.array([int(i)]))
        for design in designs.values():
            design.predict_bits(one)
    per_design_s = time.perf_counter() - start
    per_design_tps = N_NAIVE_REQUESTS / per_design_s

    # Path 2: one shared-feature engine call per single-trace request.
    engine = ReadoutEngine(designs)
    start = time.perf_counter()
    for i in rows:
        engine.predict_traces(test.demod[int(i)][None], device)
    per_engine_s = time.perf_counter() - start
    per_engine_tps = N_NAIVE_REQUESTS / per_engine_s

    # Path 3: the micro-batching server (single shard — same compute as the
    # per-request paths; the delta is batching, not parallelism).
    [feedline] = plan_feedlines(test.n_qubits, 1)
    server = ReadoutServer(
        [ServeShard(feedline=feedline, engine=ReadoutEngine(designs),
                    device=device)],
        ServerConfig(max_batch_traces=512, max_wait_ms=1.0))
    with server:
        # Preamble: prove the pipeline answers end to end before timing
        # it — a wedged shard would otherwise surface as a mysteriously
        # slow benchmark instead of a failed probe.
        health = server.healthcheck(budget_s=30.0)
        if not health.healthy:
            raise RuntimeError(
                f"serve bench preamble healthcheck failed: "
                f"{health.as_dict()}")
        report = closed_loop(server, test, n_clients=N_CLIENTS,
                             requests_per_client=REQUESTS_PER_CLIENT,
                             traces_per_request=1, seed=SEED + 3)
    served_tps = report.traces_per_s()
    p50_ms = report.latency_ms(50)
    p99_ms = report.latency_ms(99)
    mean_batch = server.stats.mean_batch_traces()

    if report.failed or report.rejected:
        raise RuntimeError(
            f"degraded load run ({report.failed} failed, "
            f"{report.rejected} rejected); benchmark numbers would lie")

    # Part 2: shard scaling, thread vs process backend. Shard engines are
    # fitted once per shard count and reused across backends (the process
    # backend ships them to its workers as serialized pipelines, leaving
    # the parent-side copies untouched).
    result_rows = [
        ["per-request designs", per_design_tps,
         per_design_tps / served_tps, float("nan"), float("nan")],
        ["per-request engine", per_engine_tps,
         per_engine_tps / served_tps, float("nan"), float("nan")],
        ["served (micro-batched)", served_tps, 1.0, p50_ms, p99_ms],
    ]
    sweep_tps = {}
    dispatch = {"served": _dispatch_metrics(server.stats.snapshot())}
    for n_shards in SCALING_SHARDS:
        shards = fit_serve_shards(MF_DESIGNS, train, val, n_shards=n_shards,
                                  training=FAST_CONFIG)
        for backend in ("thread", "process"):
            sweep_server = ReadoutServer(
                shards, ServerConfig(
                    backend=backend,
                    max_batch_traces=SCALING_MAX_BATCH_TRACES,
                    max_wait_ms=1.0))
            repeats = []
            with sweep_server:
                # Median of several repeats on the same running server:
                # worker spawn / engine ship happens once, and the gated
                # speedup ratios stop riding on a single scheduler draw.
                for repeat in range(SCALING_REPEATS):
                    sweep = closed_loop(
                        sweep_server, test, n_clients=SCALING_CLIENTS,
                        requests_per_client=SCALING_REQUESTS_PER_CLIENT,
                        traces_per_request=SCALING_TRACES_PER_REQUEST,
                        seed=SEED + 4 + repeat)
                    if sweep.failed or sweep.rejected:
                        raise RuntimeError(
                            f"degraded scaling run ({backend}/{n_shards} "
                            f"shards, repeat {repeat}: {sweep.failed} "
                            f"failed, {sweep.rejected} rejected)")
                    repeats.append(sweep)
            exit_codes = getattr(sweep_server.backend, "exit_codes", {})
            if any(code != 0 for code in exit_codes.values()):
                raise RuntimeError(
                    f"scaling run left dirty worker exits: {exit_codes}")
            median_tps = float(np.median(
                [run.traces_per_s() for run in repeats]))
            median_run = min(
                repeats, key=lambda run: abs(run.traces_per_s() - median_tps))
            sweep_tps.setdefault(backend, {})[str(n_shards)] = median_tps
            dispatch[f"{backend}-{n_shards}"] = _dispatch_metrics(
                sweep_server.stats.snapshot())
            result_rows.append([
                f"{backend} x{n_shards} shards", median_tps,
                median_tps / served_tps,
                median_run.latency_ms(50), median_run.latency_ms(99)])
    scaling = scaling_summary(sweep_tps)

    # Part 3: what does tracing itself cost?
    obs = _span_overhead(designs, device, test)
    obs["healthcheck"] = health.as_dict()

    # Part 4: what does the TCP front end cost?
    net = _net_front_end(designs, device, test)

    result = ExperimentResult(
        experiment="bench_serve",
        title=(f"Micro-batched serving vs per-request inference "
               f"({len(MF_DESIGNS)} designs) + shard scaling per backend"),
        headers=["path", "traces_per_s", "speedup_vs_served", "p50_ms",
                 "p99_ms"],
        rows=result_rows,
        notes=(f"{N_CLIENTS}-client closed loop, "
               f"{report.completed} requests, mean batch "
               f"{mean_batch:.1f} traces; per-request rows are "
               f"single-threaded loops over the same fitted pipelines; "
               f"scaling rows: median of {SCALING_REPEATS} runs, "
               f"{SCALING_CLIENTS} clients x "
               f"{SCALING_REQUESTS_PER_CLIENT} requests x "
               f"{SCALING_TRACES_PER_REQUEST} traces on "
               f"{scaling['cpus']} usable core(s)"),
        data={
            "per_design_tps": per_design_tps,
            "per_engine_tps": per_engine_tps,
            "served_tps": served_tps,
            "speedup_vs_designs": served_tps / per_design_tps,
            "speedup_vs_engine": served_tps / per_engine_tps,
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
            "mean_batch_traces": mean_batch,
            "scaling": scaling,
            "dispatch": dispatch,
            "obs": obs,
            "net": net,
            "server_stats": server.stats.snapshot(),
            "load_report": report.summary(),
        },
    )
    return result


def test_bench_serve(benchmark, record_result, profile_mode, results_dir):
    result = run_once(benchmark, run_bench_serve)
    record_result(result)

    if profile_mode:
        summary = profile_hot_paths(results_dir)
        assert summary.exists() and summary.stat().st_size > 0

    # Acceptance: micro-batched serving >= 5x naive per-request inference
    # (measured ~9x; the bound is conservative for loaded CI machines)...
    assert result.data["speedup_vs_designs"] >= 5.0
    # ...and it must also beat unbatched shared-engine calls outright
    # (measured ~6x, asserted at 2x).
    assert result.data["speedup_vs_engine"] >= 2.0
    # Latency percentiles are reported and sane: the p99 of a served
    # request stays within a small multiple of the flush deadline.
    assert 0.0 < result.data["p50_ms"] <= result.data["p99_ms"]

    # Shard scaling: the process backend must actually scale with shards —
    # but only where the runner has the cores to show it. On <4 usable
    # cores true parallelism is physically capped (1 core: the sweep only
    # measures IPC overhead), so the bound adapts; the measured ratios are
    # always recorded and regression-gated through compare_results.py.
    scaling = result.data["scaling"]
    process_speedup = scaling["process_speedup_4shards"]
    assert process_speedup > 0
    cpus = scaling["cpus"]
    if cpus >= 4:
        assert process_speedup >= 1.5, (
            f"process backend failed to scale on {cpus} cores: "
            f"{process_speedup:.2f}x at 4 shards")
    elif cpus >= 2:
        assert process_speedup >= 1.1, (
            f"process backend showed no parallel gain on {cpus} cores: "
            f"{process_speedup:.2f}x at 4 shards")
    # Per-shard dispatch acceptance: thread shards now run NumPy compute
    # in parallel (the kernels drop the GIL, and the submit->slab->queue
    # hot path no longer serializes on a dispatcher handoff), so on a
    # real multi-core runner two thread shards must beat one outright.
    thread_speedup = scaling["thread_speedup_2shards"]
    assert thread_speedup > 0
    if cpus >= 4:
        assert thread_speedup >= 1.5, (
            f"thread backend failed to scale on {cpus} cores: "
            f"{thread_speedup:.2f}x at 2 shards — per-shard dispatch "
            f"regression?")
    for backend in ("thread", "process"):
        for tps in scaling[backend].values():
            assert tps > 0

    # Hot-path health: every swept config recycled slabs (steady-state
    # serving allocates nothing per batch) and the process rings actually
    # coalesced under the chunky scaling workload's backlog.
    dispatch = result.data["dispatch"]
    assert set(dispatch) >= {"served", "thread-1", "process-1"}
    for key, metrics in dispatch.items():
        assert metrics["slab_reuse_ratio"] > 0.0, (key, metrics)
        assert 0.0 <= metrics["dispatch_lag_p50_ms"] \
            <= metrics["dispatch_lag_p99_ms"]
        if key.startswith("process"):
            assert metrics["ring_coalesce_ratio"] >= 1.0, (key, metrics)

    # Observability cost: the preamble probe answered on every shard, and
    # tracing every request stays cheap — the paper-facing target is <=5%
    # throughput cost; the asserted floor absorbs closed-loop noise on
    # loaded CI runners (the committed baseline carries the real ~1.0
    # value and compare_results.py gates drift against it). The trailing
    # off arm must also sit at ~1.0 — if it doesn't, the measurement
    # itself was unstable and the traced ratio means nothing.
    obs = result.data["obs"]
    assert obs["healthcheck"]["healthy"] is True
    assert obs["healthcheck"]["probe_ok"] is True
    assert obs["recorded_traces"] > 0
    assert obs["span_overhead_ratio"] >= 0.85, obs
    assert obs["span_overhead_ratio_off"] >= 0.85, obs

    # Network front end: the TCP path must actually move traces — the
    # asserted floor only catches a collapsed transport (loopback framing
    # should land well above it even on loaded runners); the committed
    # baseline holds the real ratio and compare_results.py gates drift
    # via its "overhead_ratio" pattern. Latency percentiles are reported,
    # not gated. The accounting must reconcile exactly: every request the
    # service admitted produced exactly one response and nothing tripped
    # the protocol or send-failure counters on a clean loopback run.
    net = result.data["net"]
    assert net["inproc_tps"] > 0 and net["tcp_tps"] > 0, net
    assert net["net_overhead_ratio"] > 0.05, net
    assert 0.0 <= net["multi_client_p50_ms"] <= net["multi_client_p99_ms"]
    assert net["multi_client_tps"] > 0, net
    stats = net["net_stats"]
    assert stats["requests_in"] == stats["responses_out"] > 0, stats
    assert stats["protocol_errors"] == 0, stats
    assert stats["send_failures"] == 0, stats
    # The continuous-monitoring arm: polling the registry every 20 ms
    # must be invisible to throughput, the sampler must actually have
    # sampled, and the default alert rules must stay silent on clean
    # load (any firing here is a false positive).
    assert obs["sampler_overhead_ratio"] >= 0.85, obs
    assert obs["telemetry_samples"] > 0, obs
    assert obs["alert_false_positives"] == 0, obs
    assert obs["alert_quiet_ratio"] == 1.0, obs

    # The measured numbers are tracked as machine-readable JSON.
    payload = json.loads(json_result_path(result.experiment).read_text())
    assert payload["data"]["served_tps"] == result.data["served_tps"]
    assert "p99_ms" in payload["data"]
    assert "process_speedup_4shards" in payload["data"]["scaling"]
    assert "thread_speedup_2shards" in payload["data"]["scaling"]
    assert "slab_reuse_ratio" in payload["data"]["dispatch"]["served"]
    assert "span_overhead_ratio" in payload["data"]["obs"]
    assert "sampler_overhead_ratio" in payload["data"]["obs"]
    assert "alert_quiet_ratio" in payload["data"]["obs"]
