"""Serving benchmark: micro-batching wins and multi-process shard scaling.

Part 1 — micro-batching (unchanged since PR 2): serves the five MF-based
Table 1 designs three ways over the same fitted pipelines:

* ``per-request designs`` — the pre-serve caller experience: every single-
  trace request runs one ``predict_bits`` call per design;
* ``per-request engine``  — one shared-feature engine call per request
  (features shared across designs, but nothing batched across requests);
* ``served``              — the micro-batching :class:`~repro.serve.ReadoutServer`
  under a 32-client closed loop: requests coalesce into engine batches,
  amortizing per-call overhead across every request in flight.

Part 2 — shard scaling: the same five designs served at 1/2/4 feedline
shards on both execution backends. Thread shards share the GIL (the curve
plateaus); process shards are spawned workers fed through shared-memory
rings, so their curve follows the host's cores. The headline metric is
``process_speedup_4shards`` (4-shard vs 1-shard process throughput) —
asserted ``>= 1.5`` wherever the runner actually has >= 4 usable cores,
recorded (and regression-gated via ``compare_results.py``) everywhere.
"""

import json
import time

import numpy as np

from repro.core import FAST_CONFIG, make_design
from repro.engine import ReadoutEngine
from repro.experiments.results import ExperimentResult
from repro.readout import five_qubit_paper_device, generate_dataset
from repro.serve import (ReadoutServer, ServeShard, closed_loop,
                        fit_serve_shards)
from repro.serve.procshard import scaling_summary
from repro.readout.sharding import plan_feedlines

from conftest import json_result_path, run_once

MF_DESIGNS = ("mf", "mf-svm", "mf-nn", "mf-rmf-svm", "mf-rmf-nn")
SHOTS_PER_STATE = 40
SEED = 42
N_NAIVE_REQUESTS = 600
N_CLIENTS = 64
REQUESTS_PER_CLIENT = 25

#: Shard counts swept by the backend-scaling section. The workload is
#: deliberately chunky (many traces per request, deep batches) so shard
#: compute — not per-batch IPC — dominates: that is the regime where
#: process shards can show parallel speedup on multi-core runners.
SCALING_SHARDS = (1, 2, 4)
SCALING_CLIENTS = 16
SCALING_REQUESTS_PER_CLIENT = 10
SCALING_TRACES_PER_REQUEST = 32
SCALING_MAX_BATCH_TRACES = 512


def run_bench_serve() -> ExperimentResult:
    device = five_qubit_paper_device()
    data = generate_dataset(device, SHOTS_PER_STATE,
                            np.random.default_rng(SEED))
    train, val, test = data.split(np.random.default_rng(SEED + 1), 0.5, 0.1)

    designs = {name: make_design(name, FAST_CONFIG).fit(train, val)
               for name in MF_DESIGNS}
    rows = np.random.default_rng(SEED + 2).integers(
        0, test.n_traces, N_NAIVE_REQUESTS)

    # Path 1: one predict_bits call per design per single-trace request.
    start = time.perf_counter()
    for i in rows:
        one = test.subset(np.array([int(i)]))
        for design in designs.values():
            design.predict_bits(one)
    per_design_s = time.perf_counter() - start
    per_design_tps = N_NAIVE_REQUESTS / per_design_s

    # Path 2: one shared-feature engine call per single-trace request.
    engine = ReadoutEngine(designs)
    start = time.perf_counter()
    for i in rows:
        engine.predict_traces(test.demod[int(i)][None], device)
    per_engine_s = time.perf_counter() - start
    per_engine_tps = N_NAIVE_REQUESTS / per_engine_s

    # Path 3: the micro-batching server (single shard — same compute as the
    # per-request paths; the delta is batching, not parallelism).
    [feedline] = plan_feedlines(test.n_qubits, 1)
    server = ReadoutServer(
        [ServeShard(feedline=feedline, engine=ReadoutEngine(designs),
                    device=device)],
        max_batch_traces=512, max_wait_ms=1.0)
    with server:
        report = closed_loop(server, test, n_clients=N_CLIENTS,
                             requests_per_client=REQUESTS_PER_CLIENT,
                             traces_per_request=1, seed=SEED + 3)
    served_tps = report.traces_per_s()
    p50_ms = report.latency_ms(50)
    p99_ms = report.latency_ms(99)
    mean_batch = server.stats.mean_batch_traces()

    if report.failed or report.rejected:
        raise RuntimeError(
            f"degraded load run ({report.failed} failed, "
            f"{report.rejected} rejected); benchmark numbers would lie")

    # Part 2: shard scaling, thread vs process backend. Shard engines are
    # fitted once per shard count and reused across backends (the process
    # backend ships them to its workers as serialized pipelines, leaving
    # the parent-side copies untouched).
    result_rows = [
        ["per-request designs", per_design_tps,
         per_design_tps / served_tps, float("nan"), float("nan")],
        ["per-request engine", per_engine_tps,
         per_engine_tps / served_tps, float("nan"), float("nan")],
        ["served (micro-batched)", served_tps, 1.0, p50_ms, p99_ms],
    ]
    sweep_tps = {}
    for n_shards in SCALING_SHARDS:
        shards = fit_serve_shards(MF_DESIGNS, train, val, n_shards=n_shards,
                                  training=FAST_CONFIG)
        for backend in ("thread", "process"):
            sweep_server = ReadoutServer(
                shards, backend=backend,
                max_batch_traces=SCALING_MAX_BATCH_TRACES,
                max_wait_ms=1.0)
            with sweep_server:
                sweep = closed_loop(
                    sweep_server, test, n_clients=SCALING_CLIENTS,
                    requests_per_client=SCALING_REQUESTS_PER_CLIENT,
                    traces_per_request=SCALING_TRACES_PER_REQUEST,
                    seed=SEED + 4)
            if sweep.failed or sweep.rejected:
                raise RuntimeError(
                    f"degraded scaling run ({backend}/{n_shards} shards: "
                    f"{sweep.failed} failed, {sweep.rejected} rejected)")
            exit_codes = getattr(sweep_server.backend, "exit_codes", {})
            if any(code != 0 for code in exit_codes.values()):
                raise RuntimeError(
                    f"scaling run left dirty worker exits: {exit_codes}")
            sweep_tps.setdefault(backend, {})[str(n_shards)] = (
                sweep.traces_per_s())
            result_rows.append([
                f"{backend} x{n_shards} shards", sweep.traces_per_s(),
                sweep.traces_per_s() / served_tps,
                sweep.latency_ms(50), sweep.latency_ms(99)])
    scaling = scaling_summary(sweep_tps)

    result = ExperimentResult(
        experiment="bench_serve",
        title=(f"Micro-batched serving vs per-request inference "
               f"({len(MF_DESIGNS)} designs) + shard scaling per backend"),
        headers=["path", "traces_per_s", "speedup_vs_served", "p50_ms",
                 "p99_ms"],
        rows=result_rows,
        notes=(f"{N_CLIENTS}-client closed loop, "
               f"{report.completed} requests, mean batch "
               f"{mean_batch:.1f} traces; per-request rows are "
               f"single-threaded loops over the same fitted pipelines; "
               f"scaling rows: {SCALING_CLIENTS} clients x "
               f"{SCALING_REQUESTS_PER_CLIENT} requests x "
               f"{SCALING_TRACES_PER_REQUEST} traces on "
               f"{scaling['cpus']} usable core(s)"),
        data={
            "per_design_tps": per_design_tps,
            "per_engine_tps": per_engine_tps,
            "served_tps": served_tps,
            "speedup_vs_designs": served_tps / per_design_tps,
            "speedup_vs_engine": served_tps / per_engine_tps,
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
            "mean_batch_traces": mean_batch,
            "scaling": scaling,
            "server_stats": server.stats.snapshot(),
            "load_report": report.summary(),
        },
    )
    return result


def test_bench_serve(benchmark, record_result):
    result = run_once(benchmark, run_bench_serve)
    record_result(result)

    # Acceptance: micro-batched serving >= 5x naive per-request inference
    # (measured ~9x; the bound is conservative for loaded CI machines)...
    assert result.data["speedup_vs_designs"] >= 5.0
    # ...and it must also beat unbatched shared-engine calls outright
    # (measured ~6x, asserted at 2x).
    assert result.data["speedup_vs_engine"] >= 2.0
    # Latency percentiles are reported and sane: the p99 of a served
    # request stays within a small multiple of the flush deadline.
    assert 0.0 < result.data["p50_ms"] <= result.data["p99_ms"]

    # Shard scaling: the process backend must actually scale with shards —
    # but only where the runner has the cores to show it. On <4 usable
    # cores true parallelism is physically capped (1 core: the sweep only
    # measures IPC overhead), so the bound adapts; the measured ratios are
    # always recorded and regression-gated through compare_results.py.
    scaling = result.data["scaling"]
    process_speedup = scaling["process_speedup_4shards"]
    assert process_speedup > 0
    cpus = scaling["cpus"]
    if cpus >= 4:
        assert process_speedup >= 1.5, (
            f"process backend failed to scale on {cpus} cores: "
            f"{process_speedup:.2f}x at 4 shards")
    elif cpus >= 2:
        assert process_speedup >= 1.1, (
            f"process backend showed no parallel gain on {cpus} cores: "
            f"{process_speedup:.2f}x at 4 shards")
    for backend in ("thread", "process"):
        for tps in scaling[backend].values():
            assert tps > 0

    # The measured numbers are tracked as machine-readable JSON.
    payload = json.loads(json_result_path(result.experiment).read_text())
    assert payload["data"]["served_tps"] == result.data["served_tps"]
    assert "p99_ms" in payload["data"]
    assert "process_speedup_4shards" in payload["data"]["scaling"]
