"""Serving benchmark: micro-batched service vs per-request inference.

Serves the five MF-based Table 1 designs three ways over the same fitted
pipelines:

* ``per-request designs`` — the pre-serve caller experience: every single-
  trace request runs one ``predict_bits`` call per design;
* ``per-request engine``  — one shared-feature engine call per request
  (features shared across designs, but nothing batched across requests);
* ``served``              — the micro-batching :class:`~repro.serve.ReadoutServer`
  under a 32-client closed loop: requests coalesce into engine batches,
  amortizing per-call overhead across every request in flight.

The served path must beat per-request per-design inference by >= 5x and
per-request engine calls outright; p50/p99 request latency is reported and
the measured numbers land in ``benchmarks/results/bench_serve.json``.
"""

import json
import time

import numpy as np

from repro.core import FAST_CONFIG, make_design
from repro.engine import ReadoutEngine
from repro.experiments.results import ExperimentResult
from repro.readout import five_qubit_paper_device, generate_dataset
from repro.serve import ReadoutServer, ServeShard, closed_loop
from repro.readout.sharding import plan_feedlines

from conftest import json_result_path, run_once

MF_DESIGNS = ("mf", "mf-svm", "mf-nn", "mf-rmf-svm", "mf-rmf-nn")
SHOTS_PER_STATE = 40
SEED = 42
N_NAIVE_REQUESTS = 600
N_CLIENTS = 64
REQUESTS_PER_CLIENT = 25


def run_bench_serve() -> ExperimentResult:
    device = five_qubit_paper_device()
    data = generate_dataset(device, SHOTS_PER_STATE,
                            np.random.default_rng(SEED))
    train, val, test = data.split(np.random.default_rng(SEED + 1), 0.5, 0.1)

    designs = {name: make_design(name, FAST_CONFIG).fit(train, val)
               for name in MF_DESIGNS}
    rows = np.random.default_rng(SEED + 2).integers(
        0, test.n_traces, N_NAIVE_REQUESTS)

    # Path 1: one predict_bits call per design per single-trace request.
    start = time.perf_counter()
    for i in rows:
        one = test.subset(np.array([int(i)]))
        for design in designs.values():
            design.predict_bits(one)
    per_design_s = time.perf_counter() - start
    per_design_tps = N_NAIVE_REQUESTS / per_design_s

    # Path 2: one shared-feature engine call per single-trace request.
    engine = ReadoutEngine(designs)
    start = time.perf_counter()
    for i in rows:
        engine.predict_traces(test.demod[int(i)][None], device)
    per_engine_s = time.perf_counter() - start
    per_engine_tps = N_NAIVE_REQUESTS / per_engine_s

    # Path 3: the micro-batching server (single shard — same compute as the
    # per-request paths; the delta is batching, not parallelism).
    [feedline] = plan_feedlines(test.n_qubits, 1)
    server = ReadoutServer(
        [ServeShard(feedline=feedline, engine=ReadoutEngine(designs),
                    device=device)],
        max_batch_traces=512, max_wait_ms=1.0)
    with server:
        report = closed_loop(server, test, n_clients=N_CLIENTS,
                             requests_per_client=REQUESTS_PER_CLIENT,
                             traces_per_request=1, seed=SEED + 3)
    served_tps = report.traces_per_s()
    p50_ms = report.latency_ms(50)
    p99_ms = report.latency_ms(99)
    mean_batch = server.stats.mean_batch_traces()

    if report.failed or report.rejected:
        raise RuntimeError(
            f"degraded load run ({report.failed} failed, "
            f"{report.rejected} rejected); benchmark numbers would lie")

    result = ExperimentResult(
        experiment="bench_serve",
        title=(f"Micro-batched serving vs per-request inference "
               f"({len(MF_DESIGNS)} designs, single-trace requests)"),
        headers=["path", "traces_per_s", "speedup_vs_served", "p50_ms",
                 "p99_ms"],
        rows=[
            ["per-request designs", per_design_tps,
             per_design_tps / served_tps, float("nan"), float("nan")],
            ["per-request engine", per_engine_tps,
             per_engine_tps / served_tps, float("nan"), float("nan")],
            ["served (micro-batched)", served_tps, 1.0, p50_ms, p99_ms],
        ],
        notes=(f"{N_CLIENTS}-client closed loop, "
               f"{report.completed} requests, mean batch "
               f"{mean_batch:.1f} traces; per-request rows are "
               f"single-threaded loops over the same fitted pipelines"),
        data={
            "per_design_tps": per_design_tps,
            "per_engine_tps": per_engine_tps,
            "served_tps": served_tps,
            "speedup_vs_designs": served_tps / per_design_tps,
            "speedup_vs_engine": served_tps / per_engine_tps,
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
            "mean_batch_traces": mean_batch,
            "server_stats": server.stats.snapshot(),
            "load_report": report.summary(),
        },
    )
    return result


def test_bench_serve(benchmark, record_result):
    result = run_once(benchmark, run_bench_serve)
    record_result(result)

    # Acceptance: micro-batched serving >= 5x naive per-request inference
    # (measured ~9x; the bound is conservative for loaded CI machines)...
    assert result.data["speedup_vs_designs"] >= 5.0
    # ...and it must also beat unbatched shared-engine calls outright
    # (measured ~6x, asserted at 2x).
    assert result.data["speedup_vs_engine"] >= 2.0
    # Latency percentiles are reported and sane: the p99 of a served
    # request stays within a small multiple of the flush deadline.
    assert 0.0 < result.data["p50_ms"] <= result.data["p99_ms"]

    # The measured numbers are tracked as machine-readable JSON.
    payload = json.loads(json_result_path(result.experiment).read_text())
    assert payload["data"]["served_tps"] == result.data["served_tps"]
    assert "p99_ms" in payload["data"]
