"""Figs 3, 4(a,b), 8, 10 benchmarks: trace-level statistics.

These are the paper's qualitative figures; the assertions encode the claim
each panel makes.
"""

from repro.experiments import (DEFAULT_CONFIG, run_fig3, run_fig4ab,
                               run_fig8, run_fig10)

from conftest import run_once


def test_bench_fig3(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig3(DEFAULT_CONFIG))
    record_result(result)
    rows = dict((r[0], r[1]) for r in result.rows)
    # Traces start near the origin (ring-up) and end at steady state.
    assert rows["first-bin |amplitude| / steady"] < 0.5
    assert 0.9 < rows["mid-bin |amplitude| / steady"] < 1.1
    # MTV clusters are well separated for qubit 1.
    assert rows["separation / spread"] > 3.0


def test_bench_fig4ab(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig4ab(DEFAULT_CONFIG))
    record_result(result)
    biases = result.column("bias")
    # Relaxation bias: ground read more reliably than excited, every qubit.
    assert all(b > 0 for b in biases)
    # Qubits with the shortest T1 (3 and 4) show the largest bias among the
    # well-separated qubits.
    assert max(biases[2], biases[3]) == max(b for i, b in enumerate(biases)
                                            if i != 1)


def test_bench_fig8(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig8(DEFAULT_CONFIG))
    record_result(result)
    fractions = result.column("fraction_of_excited")
    # Every qubit yields relaxation traces; the short-T1 qubits yield more.
    assert all(f > 0.02 for f in fractions)
    assert fractions[3] > fractions[0]  # T1: 2.6us vs 5.5us


def test_bench_fig10(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig10(DEFAULT_CONFIG))
    record_result(result)
    counts = result.data["counts"]
    # The RMF reduces excited-state misclassifications overall (Fig 10's
    # message) ...
    assert counts["mf-rmf-nn"][:, 1].sum() < counts["mf-nn"][:, 1].sum()
    # ... and for each of the short-T1 qubits individually.
    for q in (2, 3, 4):
        assert counts["mf-rmf-nn"][q, 1] <= counts["mf-nn"][q, 1]
