"""Quantization ablation: accuracy vs fixed-point word size.

Bridges the paper's Table 1 (float accuracy) and Table 4 (fixed-point
hardware): the hls4ml-style 16-bit words assumed by the FPGA cost model must
not cost accuracy, and the bench shows how far the word size can shrink.
"""

from repro.core import HerqulesDiscriminator, accuracy_vs_word_size
from repro.experiments import DEFAULT_CONFIG, ExperimentResult, prepare_splits

from conftest import run_once

WORD_SIZES = (16, 12, 10, 8, 6, 4)


def test_bench_quantization(benchmark, record_result):
    train, val, test = prepare_splits(DEFAULT_CONFIG)

    def run():
        design = HerqulesDiscriminator(use_rmf=True,
                                       config=DEFAULT_CONFIG.nn)
        design.fit(train, val)
        results = accuracy_vs_word_size(design, test, WORD_SIZES)
        rows = [["float", results["float"]]]
        rows.extend([[f"{bits}-bit", results[bits]] for bits in WORD_SIZES])
        return ExperimentResult(
            experiment="ablation_quantization",
            title="mf-rmf-nn F5Q vs fixed-point word size",
            headers=["precision", "F5Q"],
            rows=rows,
            notes="16-bit is the hls4ml default assumed by repro.fpga")

    result = run_once(benchmark, run)
    record_result(result)

    f5q = dict(result.rows)
    # 16-bit deployment is lossless; 8-bit loses under 1%; tiny words decay.
    assert abs(f5q["16-bit"] - f5q["float"]) < 0.002
    assert f5q["8-bit"] > f5q["float"] - 0.01
    assert f5q["4-bit"] <= f5q["16-bit"] + 0.002
