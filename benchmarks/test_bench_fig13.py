"""Fig 13 + Fig 14b benchmarks: surface-code impact of readout.

Fig 13 (paper): for a distance-7 code, raising the averaged readout error
epsilon_R from 0 to 2% lifts the logical error rate by roughly an order of
magnitude and can push it above the physical gate error rate.
Fig 14b (paper): a 25% shorter readout shrinks the surface-17 cycle to
0.795 (Google) / 0.836 (IBM) of nominal.
"""

import numpy as np
import pytest

from repro.experiments import DEFAULT_CONFIG, run_fig13, run_fig14b

from conftest import run_once

GATE_ERRORS = (0.003, 0.0045, 0.006, 0.009)
READOUT_ERRORS = (0.0, 0.005, 0.01, 0.02)


def test_bench_fig13(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: run_fig13(DEFAULT_CONFIG, gate_error_rates=GATE_ERRORS,
                          readout_errors=READOUT_ERRORS, distance=7,
                          shots=500))
    record_result(result)

    curves = result.data["curves"]

    # Logical error grows with the physical rate along every curve.
    for eps, curve in curves.items():
        assert curve[-1] >= curve[0], f"eps={eps}"

    # At the highest physical rate, readout error dominates the ordering:
    # the eps=2% curve is clearly above eps=0.
    assert curves[0.02][-1] > curves[0.0][-1]

    # The paper's headline: with eps_R around 1-2%, the logical error rate
    # reaches/exceeds the physical gate error rate somewhere in the sweep.
    worst = np.array(curves[0.02])
    assert np.any(worst >= np.array(GATE_ERRORS))


def test_bench_fig14b(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig14b(DEFAULT_CONFIG))
    record_result(result)

    values = dict(zip(result.column("platform"),
                      result.column("normalized_cycle_time")))
    assert values["Google"] == pytest.approx(0.795, abs=0.002)
    assert values["IBM"] == pytest.approx(0.836, abs=0.002)
    assert values["Google"] < values["IBM"]  # faster gates benefit more
