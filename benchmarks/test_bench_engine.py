"""Engine benchmark: shared-feature batched inference vs per-design path.

Times the five MF-based Table 1 designs three ways over the same test
traces:

* ``independent``   — the pre-engine harness path: every design is fitted
  and predicted on its own (no fit cache, per-design feature extraction);
* ``predict-only``  — per-design prediction over already-fitted designs
  (feature extraction still duplicated per design);
* ``engine``        — the batched :class:`~repro.engine.ReadoutEngine`:
  fitted pipelines served together, float32 chunks, per-stage features
  computed once per chunk and shared across designs.

The engine must beat the independent fit+predict path by >= 2x (it wins by
orders of magnitude — this asserts the architectural claim, not a tuning
margin) and must also beat duplicate per-design prediction outright.
"""

import time

import numpy as np

from repro.core import FAST_CONFIG, make_design
from repro.engine import ReadoutEngine
from repro.experiments.results import ExperimentResult
from repro.readout import five_qubit_paper_device, generate_dataset

from conftest import run_once

MF_DESIGNS = ("mf", "mf-svm", "mf-nn", "mf-rmf-svm", "mf-rmf-nn")
SHOTS_PER_STATE = 400
SEED = 42


def _best_of(fn, repeats=5):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench_engine() -> ExperimentResult:
    device = five_qubit_paper_device()
    data = generate_dataset(device, SHOTS_PER_STATE,
                            np.random.default_rng(SEED))
    train, val, test = data.split(np.random.default_rng(SEED + 1),
                                  0.15, 0.05)

    # Independent path: fit + predict every design from scratch.
    def independent():
        for name in MF_DESIGNS:
            design = make_design(name, FAST_CONFIG).fit(train, val)
            design.predict_bits(test)

    independent_s = _best_of(independent, repeats=1)

    designs = {name: make_design(name, FAST_CONFIG).fit(train, val)
               for name in MF_DESIGNS}
    predict_only_s = _best_of(
        lambda: [d.predict_bits(test) for d in designs.values()])

    engine = ReadoutEngine(designs, chunk_size=4096)
    engine_s = _best_of(lambda: engine.predict_bits(test))

    fit_speedup = independent_s / engine_s
    share_speedup = predict_only_s / engine_s
    throughput = test.n_traces / engine_s

    result = ExperimentResult(
        experiment="bench_engine",
        title=(f"Batched engine vs per-design path "
               f"({len(MF_DESIGNS)} designs, {test.n_traces} traces)"),
        headers=["path", "seconds", "speedup_vs_engine"],
        rows=[
            ["independent fit+predict", independent_s,
             independent_s / engine_s],
            ["predict-only (per design)", predict_only_s,
             predict_only_s / engine_s],
            ["engine (shared, float32)", engine_s, 1.0],
        ],
        notes=(f"engine throughput {throughput:,.0f} traces/s across "
               f"{len(MF_DESIGNS)} designs; per-chunk stage sharing "
               f"{100 * engine.stats.sharing_ratio():.0f}%"),
        data={"independent_s": independent_s,
              "predict_only_s": predict_only_s,
              "engine_s": engine_s,
              "fit_speedup": fit_speedup,
              "share_speedup": share_speedup},
    )
    return result


def test_bench_engine(benchmark, record_result):
    result = run_once(benchmark, run_bench_engine)
    record_result(result)

    # Acceptance: the shared-feature predict path is >= 2x faster than
    # fitting/predicting the same designs independently.
    assert result.data["fit_speedup"] >= 2.0
    # Sharing features across designs must also beat duplicated per-design
    # prediction over already-fitted designs (measured ~1.8-2x; the bound
    # is conservative to stay robust on loaded CI machines).
    assert result.data["share_speedup"] >= 1.2
