"""Ablation benchmarks for the design choices behind HERQULES.

Not paper artifacts per se, but the studies that justify the architecture:

1. dimensionality-reduction ladder: centroid < boxcar <= mf — matched
   filtering earns its place before any neural network is involved;
2. group features vs per-qubit features: giving each qubit's classifier the
   whole group's MF outputs is what lets learned designs see crosstalk;
3. duration-aware calibration: evaluating truncated traces with
   full-duration feature scalers (the naive approach) collapses accuracy,
   motivating the per-duration scaler bank.
"""

import numpy as np

from repro.core import (HerqulesDiscriminator, LinearSVM, MatchedFilterBank,
                        cumulative_accuracy, make_design, per_qubit_accuracy)
from repro.core.features import FeatureScaler
from repro.experiments import DEFAULT_CONFIG, ExperimentResult, prepare_splits

from conftest import run_once


def test_ablation_dimensionality_reduction(benchmark, record_result):
    train, val, test = prepare_splits(DEFAULT_CONFIG)

    def run():
        rows = []
        for name in ("centroid", "boxcar", "mf"):
            design = make_design(name, DEFAULT_CONFIG.nn).fit(train, val)
            accs = per_qubit_accuracy(design.predict_bits(test), test.labels)
            rows.append([name, cumulative_accuracy(accs)])
        # The boxcar optimizes its integration window per qubit; give the
        # MF the same shortened window for a like-for-like comparison
        # (Section 5.1.2: boxcar filters "shorten the MFs").
        mf = make_design("mf", DEFAULT_CONFIG.nn).fit(train, val)
        short = test.truncate(750.0)
        accs = per_qubit_accuracy(mf.predict_bits(short), short.labels)
        rows.append(["mf@750ns", cumulative_accuracy(accs)])
        return ExperimentResult(
            experiment="ablation_dimred",
            title="Dimensionality-reduction ladder (F5Q)",
            headers=["design", "F5Q"], rows=rows)

    result = run_once(benchmark, run)
    record_result(result)
    f5q = dict(result.rows)
    # Centroid is the weakest reduction; the window-optimized boxcar beats
    # the *full-window* MF because it stops integrating before relaxations
    # bite — the per-qubit window optimization of Section 5.1.2. A uniform
    # 750ns truncation of the MF is not enough to recover that (different
    # qubits want different windows), staying within 1% of the full MF.
    assert f5q["centroid"] <= min(f5q["boxcar"], f5q["mf"]) + 0.002
    assert f5q["boxcar"] >= f5q["mf"] - 0.002
    assert abs(f5q["mf@750ns"] - f5q["mf"]) < 0.01


def test_ablation_group_vs_per_qubit_features(benchmark, record_result):
    """A per-qubit SVM that sees only its own MF/RMF outputs loses the
    crosstalk information the full feature vector carries."""
    train, val, test = prepare_splits(DEFAULT_CONFIG)
    bank = MatchedFilterBank.fit(train, use_rmf=True)
    scaler = FeatureScaler.fit(bank.features(train))
    x_train = scaler.transform(bank.features(train))
    x_test = scaler.transform(bank.features(test))
    n_q = train.n_qubits

    def run():
        rows = []
        for scope in ("own-features", "group-features"):
            preds = []
            for q in range(n_q):
                columns = ([q, n_q + q] if scope == "own-features"
                           else list(range(2 * n_q)))
                svm = LinearSVM().fit(x_train[:, columns],
                                      train.labels[:, q])
                preds.append(svm.predict(x_test[:, columns]))
            accs = per_qubit_accuracy(np.stack(preds, axis=1), test.labels)
            rows.append([scope, cumulative_accuracy(accs)])
        return ExperimentResult(
            experiment="ablation_features",
            title="SVM feature scope (F5Q)",
            headers=["scope", "F5Q"], rows=rows)

    result = run_once(benchmark, run)
    record_result(result)
    f5q = dict(result.rows)
    assert f5q["group-features"] >= f5q["own-features"] - 0.002


def test_ablation_duration_scalers(benchmark, record_result):
    """Without per-duration feature scalers, truncated inference feeds the
    FNN out-of-distribution inputs and accuracy collapses."""
    train, val, test = prepare_splits(DEFAULT_CONFIG)

    def run():
        design = HerqulesDiscriminator(use_rmf=True,
                                       config=DEFAULT_CONFIG.nn)
        design.fit(train, val)
        truncated = test.truncate(750.0)

        with_scalers = cumulative_accuracy(per_qubit_accuracy(
            design.predict_bits(truncated), truncated.labels))

        scaler_stage = design.pipeline.stages[1]
        saved = scaler_stage.scalers
        # Naive: keep only the full-duration scaler, so truncated inference
        # falls back to the 1us statistics.
        scaler_stage.scalers = {scaler_stage.train_bins:
                                saved[scaler_stage.train_bins]}
        without = cumulative_accuracy(per_qubit_accuracy(
            design.predict_bits(truncated), truncated.labels))
        scaler_stage.scalers = saved

        return ExperimentResult(
            experiment="ablation_duration_scalers",
            title="750ns inference with/without duration-aware scalers",
            headers=["variant", "F5Q_at_750ns"],
            rows=[["per-duration scalers", with_scalers],
                  ["full-duration scalers (naive)", without]])

    result = run_once(benchmark, run)
    record_result(result)
    rows = dict(result.rows)
    assert rows["per-duration scalers"] \
        > rows["full-duration scalers (naive)"]
