"""Fig 11 benchmark: fast readout.

(a) mf-rmf-nn trained at 1us and evaluated truncated exceeds its own
    accuracy floor early and loses little at 750ns (paper: beats the
    baseline's full-duration accuracy at ~750ns without retraining);
(b) iterative QPE duration scales better with a 500ns readout.
"""

from repro.core import saturation_duration
from repro.experiments import (DEFAULT_CONFIG, run_fig11a, run_fig11b,
                               run_table1)

from conftest import run_once


def test_bench_fig11a(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig11a(DEFAULT_CONFIG))
    record_result(result)

    accuracies = result.column("mf-rmf-nn")
    # Accuracy grows (weakly) with duration and is already near-final at
    # 750ns.
    assert accuracies[-1] >= accuracies[0]
    full = accuracies[-1]
    at_750 = accuracies[-3]
    assert at_750 > full - 0.02

    points = result.data["herqules"]
    assert saturation_duration(points, tolerance=0.02) <= 800.0


def test_fig11a_crossover_with_measured_baseline(record_result):
    """The paper's crossover claim, evaluated against the *measured*
    baseline F5Q from Table 1: HERQULES at 750ns still beats the baseline
    at its full 1us duration."""
    table1 = run_table1(DEFAULT_CONFIG, designs=("baseline",))
    baseline_f5q = table1.rows[0][6]
    fig11a = run_fig11a(DEFAULT_CONFIG)
    at_750 = fig11a.column("mf-rmf-nn")[-3]
    assert at_750 > baseline_f5q


def test_bench_fig11b(benchmark, record_result):
    result = run_once(benchmark, lambda: run_fig11b(DEFAULT_CONFIG))
    record_result(result)

    slow = result.column("duration_us_1000ns_readout")
    fast = result.column("duration_us_500ns_readout")
    assert all(f < s for f, s in zip(fast, slow))
    # Paper plot range: ~5-20us over 4-14 bits.
    assert 4.0 < slow[0] < 8.0
    assert 18.0 < slow[-1] < 24.0
