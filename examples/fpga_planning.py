"""FPGA deployment planning (paper Sections 3.4, 7.2, 7.3).

Uses the calibrated hls4ml-style cost model to answer the deployment
questions the paper raises: does a discriminator fit on an off-the-shelf
control FPGA, at what latency, and how many qubits can one RFSoC serve?

Run:  python examples/fpga_planning.py
"""

from repro.fpga import (DEVICE_CATALOG, XCZU7EV, ZU28DR, baseline_cost,
                        herqules_cost, max_qubits_per_fpga)


def describe(label, cost, device):
    util = cost.utilization(device)
    fits = "fits" if cost.fits(device) else "DOES NOT FIT"
    print(f"{label:24s} latency={cost.latency_cycles:6.0f} cycles  "
          f"LUT={util['LUT']:7.2f}%  DSP={util['DSP']:6.2f}%  "
          f"BRAM={util['BRAM']:5.2f}%  -> {fits}")


def main():
    print(f"target device: {XCZU7EV.name} "
          f"({XCZU7EV.luts} LUTs, {XCZU7EV.dsps} DSPs)\n")

    print("HERQULES (5-qubit group, MF+RMF+small FNN):")
    for rf in (1, 4, 16, 64):
        describe(f"  reuse factor {rf}", herqules_cost(rf), XCZU7EV)

    print("\nBaseline raw-trace FNN (1000-500-250-32):")
    for rf in (200, 500, 1000):
        describe(f"  reuse factor {rf}", baseline_cost(rf), XCZU7EV)

    print("\nqubits readable per device (80% resource budget, RF=4):")
    for name, device in sorted(DEVICE_CATALOG.items()):
        qubits = max_qubits_per_fpga(device=device)
        print(f"  {name:28s} {qubits:4d} qubits")

    print("\nconclusion: HERQULES turns a does-not-fit software "
          "discriminator into <8% of a standard control FPGA, letting a "
          f"QICK-class RFSoC ({ZU28DR.name}) read out "
          f"{max_qubits_per_fpga(device=ZU28DR)} qubits (paper: >50).")


if __name__ == "__main__":
    main()
