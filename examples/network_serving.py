"""Serving qubit readout over TCP: the wire protocol end to end.

Fronts the micro-batching :class:`~repro.serve.ReadoutServer` with a
:class:`~repro.net.ReadoutService` on localhost and exercises the whole
network surface:

1. a :class:`~repro.net.ReadoutClient` handshake, healthcheck, and
   single- and multi-trace discrimination requests,
2. a multi-client network closed-loop load test, priced against the
   same workload submitted in-process (the wire overhead, measured),
3. graceful shutdown: SIGTERM lands mid-load, the service drains —
   every admitted request completes and flushes its response, late
   arrivals get a typed drain error, and the accounting reconciles.

Run:  PYTHONPATH=src python examples/network_serving.py
"""

import os
import signal
import threading
import time

import numpy as np

from repro.core import FAST_CONFIG
from repro.net import PROTOCOL_VERSION, ReadoutClient, ReadoutService
from repro.obs import install_signal_handlers
from repro.readout import five_qubit_paper_device, generate_dataset
from repro.serve import (ServerClosedError, ServerConfig,
                         build_sharded_server, closed_loop,
                         network_closed_loop)

DESIGNS = ("mf",)


def main():
    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=40,
                            rng=np.random.default_rng(7))
    train, val, test = data.split(np.random.default_rng(8), 0.5, 0.1)

    print(f"calibrating {DESIGNS} on {train.n_traces} traces, "
          f"2 feedline shards...")
    server = build_sharded_server(
        DESIGNS, train, val, n_shards=2, training=FAST_CONFIG,
        config=ServerConfig(max_wait_ms=1.0))

    # stop_server=True: draining the front end drains the server behind
    # it too; exit_on_signal=False keeps control here after the drain so
    # the summary below still prints.
    with server, ReadoutService(server, stop_server=True) as service:
        handle = install_signal_handlers(service, exit_on_signal=False)
        host, port = service.address
        print(f"service listening on {host}:{port} "
              f"(wire protocol v{PROTOCOL_VERSION})")

        # 1. One client: handshake facts, health probe, predictions.
        with ReadoutClient(host, port) as client:
            info = client.info()
            print(f"handshake: designs={info['design_names']} "
                  f"geometry=({info['n_qubits']} qubits, "
                  f"{info['n_bins']} bins)")
            health = client.healthcheck(budget_s=10.0)
            print(f"healthcheck over the wire: "
                  f"{'healthy' if health['healthy'] else 'UNHEALTHY'} "
                  f"({len(health['shards'])} shards)")

            response = client.predict(test.demod[0])
            print(f"single trace -> bits {response.bits_for('mf').tolist()} "
                  f"in {1000 * response.latency_s:.2f} ms")
            stack = client.predict_many(test.demod[:16])
            print(f"16-trace stack -> {stack.bits_for('mf').shape} bits "
                  f"in {1000 * stack.latency_s:.2f} ms")

        # 2. Load: the identical seeded workload, in-process vs TCP.
        inproc = closed_loop(server, test, n_clients=4,
                             requests_per_client=50, seed=9)
        net = network_closed_loop(service.address, test, n_clients=4,
                                  requests_per_client=50, seed=9)
        print(f"\nin-process closed loop: {inproc.traces_per_s():,.0f} "
              f"traces/s, p99 {inproc.latency_ms(99):.2f} ms")
        print(f"network    closed loop: {net.traces_per_s():,.0f} "
              f"traces/s, p99 {net.latency_ms(99):.2f} ms "
              f"({net.traces_per_s() / inproc.traces_per_s():.2f}x of "
              f"in-process)")

        # 3. SIGTERM mid-load. Client threads hammer the service while
        # the signal lands; the handler drains: admitted requests finish,
        # later ones get the typed drain error — never silence.
        outcomes = {"ok": 0, "drained": 0}
        lock = threading.Lock()
        stop_firing = threading.Event()

        def client_loop():
            with ReadoutClient(host, port, reconnect=False) as client:
                while not stop_firing.is_set():
                    try:
                        client.predict(test.demod[0])
                        key = "ok"
                    except (ServerClosedError, ConnectionError, OSError):
                        key = "drained"
                        stop_firing.set()
                    with lock:
                        outcomes[key] += 1

        threads = [threading.Thread(target=client_loop, daemon=True)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)                    # real traffic in flight
        print("\nsending SIGTERM mid-load...")
        os.kill(os.getpid(), signal.SIGTERM)
        # The handler runs on this (main) thread the moment the sleep
        # below resumes, drains the service, and returns control here.
        time.sleep(0.05)
        stop_firing.set()
        for thread in threads:
            thread.join(timeout=15.0)
        handle.uninstall()

        stats = service.net_stats.snapshot()
        print(f"drained: {outcomes['ok']} requests answered, "
              f"{outcomes['drained']} turned away with the typed error")
        print(f"accounting: {stats['requests_in']} admitted == "
              f"{stats['responses_out']} responses flushed, "
              f"{stats['send_failures']} send failures")
        assert stats["requests_in"] == stats["responses_out"]
        assert stats["send_failures"] == 0
    print("service and server stopped cleanly")


if __name__ == "__main__":
    main()
