"""Fast readout without retraining (paper Section 5, Fig 11 / Table 3).

Trains HERQULES once on the full 1 us readout, then serves it through the
batched :class:`~repro.engine.ReadoutEngine` on progressively truncated
trace streams — the matched-filter front end makes the neural network
agnostic to the readout duration, and the engine streams float32 chunks
through the fitted stage pipeline. Finds the shortest duration whose
accuracy saturates, shows which qubit can be read fastest, and quantifies
the impact on an iterative-QPE application.

Run:  python examples/fast_readout.py
"""

import time

import numpy as np

from repro.circuits import QPETimingModel
from repro.core import TrainingConfig, make_design, saturation_duration
from repro.core.duration import DurationPoint
from repro.engine import ReadoutEngine
from repro.readout import five_qubit_paper_device, generate_dataset


def main():
    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=150,
                            rng=np.random.default_rng(21))
    train, val, test = data.split(np.random.default_rng(22), 0.5, 0.1)

    config = TrainingConfig(max_epochs=150, patience=20, learning_rate=2e-3)
    print("training mf-rmf-nn once, on the full 1 us duration...")
    design = make_design("mf-rmf-nn", config).fit(train, val)

    # One engine serves the fitted pipeline over every truncated stream;
    # traces flow through preallocated float32 chunks.
    engine = ReadoutEngine({"mf-rmf-nn": design})

    durations = [300.0, 400.0, 500.0, 600.0, 700.0, 750.0, 800.0, 900.0,
                 1000.0]
    points = []
    started = time.perf_counter()
    for duration in durations:
        truncated = test.truncate(duration)
        evaluation = engine.evaluate(truncated)["mf-rmf-nn"]
        points.append(DurationPoint(
            duration_ns=truncated.duration_ns,
            cumulative_accuracy=evaluation.cumulative,
            per_qubit=evaluation.per_qubit,
            retrained=False,
        ))
    elapsed = time.perf_counter() - started

    print("\nduration   F5Q      per-qubit accuracies")
    for point in points:
        per_qubit = "  ".join(f"{a:.3f}" for a in point.per_qubit)
        print(f"{point.duration_ns:6.0f}ns  {point.cumulative_accuracy:.4f}"
              f"   {per_qubit}")
    print(f"({engine.stats.traces:,} traces in {elapsed:.2f}s through the "
          f"engine, {engine.stats.traces / elapsed:,.0f} traces/s)")

    shortest = saturation_duration(points, tolerance=0.01)
    print(f"\nshortest saturating duration (1% tolerance): "
          f"{shortest:.0f} ns")

    # Which qubit tolerates halved readout best? (paper: qubit 5)
    full = points[-1].per_qubit
    half = points[durations.index(500.0)].per_qubit
    drops = full - half
    fastest = int(np.argmin(drops))
    print(f"qubit {fastest + 1} degrades least when halved "
          f"({full[fastest]:.3f} -> {half[fastest]:.3f}); map ancilla "
          f"roles to it for mid-circuit measurement")

    # Application impact: iterative QPE with the faster ancilla readout.
    bits = 12
    slow = QPETimingModel(readout_ns=1000.0).circuit_duration_us(bits)
    fast = QPETimingModel(readout_ns=500.0).circuit_duration_us(bits)
    print(f"\n{bits}-bit iterative QPE: {slow:.1f} us at 1 us readout "
          f"vs {fast:.1f} us at 500 ns ({100 * (1 - fast / slow):.0f}% "
          f"faster)")


if __name__ == "__main__":
    main()
