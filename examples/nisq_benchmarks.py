"""NISQ application impact of better readout (paper Section 7.1, Fig 12).

Evaluates the qft/ghz/bv/qaoa benchmark suite on the built-in noisy
statevector simulator under two readout accuracies — the baseline
discriminator's and HERQULES's — and prints the normalized fidelities.

Run:  python examples/nisq_benchmarks.py  (takes ~30 s; bv-20 is 21 qubits)
"""

from repro.circuits import NoiseModel, normalized_fidelities

BASELINE_F5Q = 0.9122   # paper Table 1
HERQULES_F5Q = 0.9266


def main():
    print("noise model: depolarizing 3e-4 (1q) / 1e-2 (2q), readout error "
          "= 1 - F5Q of each discriminator\n")
    results = normalized_fidelities(
        baseline_readout_error=1 - BASELINE_F5Q,
        improved_readout_error=1 - HERQULES_F5Q,
        noise=NoiseModel())

    print(f"{'benchmark':10s} {'F(baseline)':>12s} {'F(herqules)':>12s} "
          f"{'normalized':>11s}")
    total = 0.0
    for name, r in results.items():
        print(f"{name:10s} {r['baseline']:12.3f} {r['improved']:12.3f} "
              f"{r['normalized']:11.3f}")
        total += r["normalized"]
    print(f"\nmean normalized fidelity: {total / len(results):.3f} "
          f"(paper: 1.118)")
    print("wider circuits gain more: readout error compounds per measured "
          "qubit, so bv-20 improves most (paper: 1.322)")


if __name__ == "__main__":
    main()
