"""From calibration to deployable artifact (production workflow).

The full lifecycle a control-hardware team would run with this library:

1. calibrate: simulate (or load) labeled readout traces;
2. train the mf-rmf-nn discriminator;
3. quantize it to the FPGA's fixed-point word size and confirm the
   accuracy cost is negligible;
4. check the design fits the target FPGA at the chosen reuse factor;
5. save the deployable model (envelope ROMs + FNN weights) to disk and
   verify the reloaded model is bit-identical.

Run:  python examples/deploy_to_hardware.py
"""

import pathlib
import tempfile

import numpy as np

from repro.core import (HerqulesDiscriminator, QuantizedHerqules,
                        TrainingConfig, load_herqules, save_herqules)
from repro.fpga import XCZU7EV, estimate_pipeline
from repro.readout import five_qubit_paper_device, generate_dataset


def main():
    # 1. calibrate -------------------------------------------------------
    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=200,
                            rng=np.random.default_rng(51))
    train, val, test = data.split(np.random.default_rng(52), 0.5, 0.1)

    # 2. train -----------------------------------------------------------
    config = TrainingConfig(max_epochs=200, patience=25, learning_rate=2e-3,
                            batch_size=128)
    design = HerqulesDiscriminator(use_rmf=True, config=config)
    design.fit(train, val)
    float_accuracy = design.evaluate(test).cumulative
    print(f"trained mf-rmf-nn: F5Q = {float_accuracy:.4f} (float)")

    # 3. quantize --------------------------------------------------------
    word_bits = 16
    quantized = QuantizedHerqules(design, word_bits)
    q_accuracy = quantized.evaluate(test).cumulative
    print(f"quantized to {word_bits}-bit fixed point: F5Q = "
          f"{q_accuracy:.4f} (delta {q_accuracy - float_accuracy:+.4f})")

    # 4. fit check — exported straight from the fitted stage pipeline ----
    reuse_factor = 4
    cost = estimate_pipeline(design, reuse_factor)
    util = cost.utilization(XCZU7EV)
    print(f"on {XCZU7EV.name} @ RF={reuse_factor}: "
          f"LUT {util['LUT']:.2f}%, BRAM {util['BRAM']:.2f}%, "
          f"latency {cost.latency_cycles:.0f} cycles "
          f"-> {'fits' if cost.fits(XCZU7EV) else 'DOES NOT FIT'}")

    # 5. save + verify ---------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = str(pathlib.Path(tmp) / "herqules_5q.npz")
        save_herqules(design, path)
        size_kb = pathlib.Path(path).stat().st_size / 1024
        reloaded = load_herqules(path)
        identical = np.array_equal(reloaded.predict_bits(test),
                                   design.predict_bits(test))
        print(f"saved deployable model ({size_kb:.0f} KiB); reloaded "
              f"predictions identical: {identical}")


if __name__ == "__main__":
    main()
