"""Serving qubit readout as a traffic-handling service.

Calibrates discriminators for the five-qubit device, splits it into two
feedline shards (the paper's one-discriminator-per-FPGA deployment), and
serves single- and multi-trace discrimination requests through the
micro-batching :class:`~repro.serve.ReadoutServer`:

1. synchronous and ``asyncio`` submissions,
2. a closed-loop load test vs the naive per-request path,
3. the server's latency percentiles and batching counters,
4. signal-safe operation: SIGTERM/Ctrl-C writes a debug bundle and
   drains the server instead of dropping in-flight requests.

Run:  PYTHONPATH=src python examples/serve_readout.py
"""

import asyncio
import time

import numpy as np

from repro.core import FAST_CONFIG, make_design
from repro.engine import ReadoutEngine
from repro.obs import install_signal_handlers
from repro.readout import five_qubit_paper_device, generate_dataset
from repro.serve import ServerConfig, build_sharded_server, closed_loop

DESIGNS = ("mf", "mf-rmf-svm")


def main():
    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=40,
                            rng=np.random.default_rng(7))
    train, val, test = data.split(np.random.default_rng(8), 0.5, 0.1)

    print(f"calibrating {DESIGNS} on {train.n_traces} traces, "
          f"2 feedline shards...")
    server = build_sharded_server(DESIGNS, train, val, n_shards=2,
                                  training=FAST_CONFIG,
                                  config=ServerConfig(max_wait_ms=1.0))

    # SIGTERM/Ctrl-C writes a debug bundle and drains in-flight requests
    # before exiting (a second signal force-quits).
    with server, install_signal_handlers(server,
                                         bundle_dir="serve_readout_bundle"):
        # Prove both shards answer end to end before sending traffic.
        health = server.healthcheck(budget_s=10.0)
        worst_rtt = max(s.round_trip_ms for s in health.shards)
        print(f"healthcheck: {'healthy' if health.healthy else 'UNHEALTHY'} "
              f"({len(health.shards)} shards, worst probe rtt "
              f"{worst_rtt:.2f} ms)")

        # One experiment shot: a single multiplexed trace in, bits out.
        response = server.predict(test.demod[0])
        print(f"\nsingle-trace request -> "
              f"{ {d: response.bits[d].tolist() for d in DESIGNS} } "
              f"in {1000 * response.latency_s:.2f} ms "
              f"(micro-batch of {response.batch_traces})")

        # Concurrent clients via asyncio: requests coalesce into batches.
        async def fan_out(n):
            jobs = [server.predict_async(test.demod[i]) for i in range(n)]
            return await asyncio.gather(*jobs)

        responses = asyncio.run(fan_out(32))
        sizes = sorted({r.batch_traces for r in responses})
        print(f"32 async requests served in micro-batches of {sizes}")

        # Load test: closed loop, 16 clients of single-trace requests.
        report = closed_loop(server, test, n_clients=16,
                             requests_per_client=50, seed=9)
        print(f"\nclosed-loop load: {report.completed} requests in "
              f"{report.elapsed_s:.2f} s -> {report.traces_per_s():,.0f} "
              f"traces/s, p50 {report.latency_ms(50):.2f} ms, "
              f"p99 {report.latency_ms(99):.2f} ms")

        stats = server.stats.snapshot()
        print(f"server: {stats['batches']} batches, mean "
              f"{stats['mean_batch_traces']:.1f} traces/batch, "
              f"{stats['rejected']} rejected, {stats['shed']} shed")

    # The same workload, one naive per-request engine call at a time.
    engines = {name: make_design(name, FAST_CONFIG).fit(train, val)
               for name in DESIGNS}
    engine = ReadoutEngine(engines)
    n = report.completed
    rows = np.random.default_rng(9).integers(0, test.n_traces, n)
    start = time.perf_counter()
    for i in rows:
        engine.predict_traces(test.demod[int(i)][None], device)
    naive_s = time.perf_counter() - start
    print(f"\nnaive per-request loop: {n / naive_s:,.0f} traces/s "
          f"-> micro-batching wins "
          f"{report.traces_per_s() * naive_s / n:.1f}x")


if __name__ == "__main__":
    main()
