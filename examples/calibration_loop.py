"""Surviving device drift: the closed calibration loop in action.

Calibrates a two-qubit, two-shard readout service, then lets the simulated
device drift underneath it (resonator responses rotate away from the
fitted matched filters). The :mod:`repro.calib` loop watches live traffic,
alarms, refits in the background (warm-started from the incumbent
envelopes), validates the candidate on held-out probes, and hot-swaps it
into the serving shards — zero downtime, visible as model-version bumps
with no request failures.

Run:  PYTHONPATH=src python examples/calibration_loop.py
"""

import numpy as np

from repro.calib import (CalibrationLoop, DriftingSimulator, DriftSchedule,
                         FidelityMonitor, ParameterDrift, Recalibrator)
from repro.experiments.drift_recovery import drifting_two_qubit_device
from repro.serve import ServerConfig, build_sharded_server

TRACES_PER_WINDOW = 150
N_WINDOWS = 16


def main():
    device = drifting_two_qubit_device()
    schedule = DriftSchedule([
        # Qubit 0's resonator response rotates 2.3 rad over ~9 windows;
        # qubit 1's shrinks by 30% a little later.
        ParameterDrift(parameter="iq_angle_rad", qubit=0, kind="linear",
                       magnitude=2.3, period_shots=9 * TRACES_PER_WINDOW,
                       start_shot=3 * TRACES_PER_WINDOW),
        ParameterDrift(parameter="separation_scale", qubit=1, kind="linear",
                       magnitude=-0.3, period_shots=8 * TRACES_PER_WINDOW,
                       start_shot=5 * TRACES_PER_WINDOW),
    ])
    simulator = DriftingSimulator(device, schedule)

    print("calibrating 'mf' on the clean device, 2 feedline shards...")
    initial = simulator.calibration_set(150, np.random.default_rng(0))
    train, val, _ = initial.split(np.random.default_rng(1), 0.6, 0.15)
    server = build_sharded_server(
        ("mf",), train, val, n_shards=2,
        config=ServerConfig(max_wait_ms=0.5)).start()

    loop = CalibrationLoop(
        server, simulator,
        Recalibrator(server, calibration_shots_per_state=150),
        fidelity_monitor=FidelityMonitor(window=2 * TRACES_PER_WINDOW,
                                         drop_tolerance=0.04,
                                         min_observations=TRACES_PER_WINDOW),
        recal_rng=np.random.default_rng(2))

    print(f"serving {N_WINDOWS} windows x {TRACES_PER_WINDOW} traces of "
          f"drifting traffic:\n")
    print("window  fidelity  event")
    traffic_rng = np.random.default_rng(3)
    for _ in range(N_WINDOWS):
        record = loop.process_window(
            simulator.generate_traffic(TRACES_PER_WINDOW, traffic_rng))
        event = ""
        if record.recalibration is not None:
            swapped = record.recalibration.swapped
            event = (f"recalibrated: {swapped} shard(s) promoted, "
                     f"validated fidelity "
                     f"{record.recalibration.fidelity():.3f}"
                     if swapped else "recalibrated: candidate rejected")
        elif record.alarm is not None:
            event = f"alarm ({record.alarm.monitor})"
        print(f"{record.window:>6}  {record.fidelity:>8.3f}  {event}")

    stats = server.stats.snapshot()
    print(f"\n{loop.swap_count} hot swaps (model versions "
          f"{stats['model_versions']}), {loop.request_failures} request "
          f"failures, {stats['completed']} requests served")
    server.stop()


if __name__ == "__main__":
    main()
