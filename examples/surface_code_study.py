"""Readout errors and quantum error correction (paper Section 7.3).

Reproduces the paper's two QEC arguments end to end on the built-in
surface-code substrate:

1. (Fig 13) raising the readout assignment error epsilon_R degrades the
   logical error rate of a surface-code memory — better discriminators
   directly buy logical fidelity;
2. (Fig 14b) the 25% readout shortening HERQULES enables without
   retraining shrinks the syndrome cycle time on Google- and IBM-class
   hardware.

Run:  python examples/surface_code_study.py  (takes ~1 minute)
"""

import numpy as np

from repro.qec import fig14b_normalized_cycle_times, logical_error_sweep


def main():
    rng = np.random.default_rng(99)
    distance = 5
    gate_errors = [0.002, 0.004, 0.006]
    print(f"surface code memory, distance {distance}, "
          f"{distance} noisy rounds, MWPM decoding\n")

    print("epsilon_R   " + "".join(f"  p={p:<8.3f}" for p in gate_errors))
    for eps in (0.0, 0.01, 0.02):
        results = logical_error_sweep(
            distance, [4 * p for p in gate_errors], eps, shots=250, rng=rng)
        rates = "".join(f"  {r.logical_error_per_round:<10.4f}"
                        for r in results)
        print(f"{eps:<10.3f}{rates}")

    print("\n(logical error per round; rows with higher readout error are "
          "uniformly worse — a 1-2% assignment error can erase the code's "
          "advantage, Fig 13)")

    print("\nsyndrome cycle time with 25% faster readout (Fig 14b):")
    for platform, value in fig14b_normalized_cycle_times(0.75).items():
        print(f"  {platform:8s} {value:.3f} of nominal")


if __name__ == "__main__":
    main()
