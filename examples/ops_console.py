"""Operating the readout service: one incident, end to end.

A walkthrough of the monitoring loop built on top of the serving stack:

1. a process-backend :class:`~repro.serve.ReadoutServer` with continuous
   telemetry (``telemetry_interval_s``), the default SLO alert rules,
   and an auto-bundle directory,
2. signal-safe operation: SIGTERM/Ctrl-C writes a postmortem bundle and
   drains the server before exiting,
3. the live ops console rendered straight off the running server,
4. an induced incident — one shard's worker process is SIGKILLed under
   load — the edge-triggered ``worker_death`` alert fires exactly once
   and writes a debug bundle on the firing edge,
5. the same console rendered from that bundle, which is what you would
   open during the real 3am page:
   ``PYTHONPATH=src python -m repro.obs.console <bundle_dir>``.

Run:  PYTHONPATH=src python examples/ops_console.py [--bundles DIR]
"""

import argparse
import os
import signal
import time

import numpy as np

from repro.core import FAST_CONFIG
from repro.obs import install_signal_handlers, render_console
from repro.readout import five_qubit_paper_device, generate_dataset
from repro.serve import ServerConfig, build_sharded_server, closed_loop

DESIGN = "mf"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bundles", default="ops_bundles",
                        help="auto-bundle directory (default: %(default)s)")
    args = parser.parse_args()

    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=40,
                            rng=np.random.default_rng(31))
    train, val, test = data.split(np.random.default_rng(32), 0.5, 0.1)

    print(f"calibrating {DESIGN!r}, 2 process shards, telemetry every "
          f"50 ms, default alert rules, bundles -> {args.bundles}/ ...")
    server = build_sharded_server(
        (DESIGN,), train, val, n_shards=2, training=FAST_CONFIG,
        config=ServerConfig(backend="process", max_wait_ms=1.0,
                            trace_sample_rate=0.25,
                            telemetry_interval_s=0.05,
                            bundle_dir=args.bundles))

    # SIGTERM/Ctrl-C now writes a bundle and drains before exiting, so an
    # operator kill is still a postmortem, not a mystery.
    with server, install_signal_handlers(
            server, bundle_dir=os.path.join(args.bundles, "shutdown"),
            exit_on_signal=False):
        # Healthy service under clean load: the sampler folds every
        # counter into time series while the rules watch each sample.
        closed_loop(server, test, n_clients=8, requests_per_client=20,
                    seed=33)
        report = server.healthcheck(budget_s=30.0)
        print(f"healthcheck: healthy={report.healthy}, "
              f"{int(server.telemetry.samples)} telemetry samples, "
              f"{server.alerts.total_fired()} alerts fired\n")
        print("live console (healthy):")
        print(render_console(server))

        # The incident: one worker process dies hard. Detection needs
        # traffic on the dead ring, so keep submitting while we wait for
        # the worker_death rule's firing edge.
        victim = report.shards[0].pid
        print(f"\nSIGKILLing shard 0 worker (pid {victim})...")
        os.kill(victim, signal.SIGKILL)
        state = server.alerts.state("worker_death")
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and not state.firing:
            try:
                closed_loop(server, test, n_clients=1,
                            requests_per_client=2, seed=34)
            except Exception:
                pass  # rejected requests are part of the incident
            time.sleep(0.05)
        if not state.firing:
            raise SystemExit("worker_death alert never fired")
        print(f"alert fired: worker_death x{state.fired_count} "
              f"(edge-triggered: it will not re-fire while the "
              f"condition persists)")

    # The firing edge wrote the postmortem automatically; this is the
    # directory you attach to the incident ticket.
    bundle = os.path.join(args.bundles,
                          f"alert-worker_death-{state.fired_count}")
    print(f"\nauto-written bundle: {bundle}")
    print("console from the bundle (what the 3am page looks like):")
    print(render_console(bundle))
    print(f"\nreplay it any time: PYTHONPATH=src python -m "
          f"repro.obs.console {bundle}")


if __name__ == "__main__":
    main()
