"""Inside the RMF: how HERQULES detects qubit relaxation (Section 4.3).

Walks through the paper's key mechanism step by step on simulated traces:

1. run Algorithm 1 to label relaxation traces in a calibration set;
2. train a relaxation matched filter (RMF) on those labels;
3. show that the RMF output separates relaxed traces from true ground
   traces — information the ordinary MF projects away;
4. quantify how many excited-state misclassifications the extra feature
   recovers.

Run:  python examples/relaxation_detection.py
"""

import numpy as np

from repro.core import (MatchedFilter, TrainingConfig, get_relaxation_traces,
                        make_design, split_excited_traces)
from repro.readout import five_qubit_paper_device, generate_dataset

QUBIT = 3  # shortest T1 on the preset device -> most relaxations


def main():
    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=150,
                            rng=np.random.default_rng(31))
    train, val, test = data.split(np.random.default_rng(32), 0.5, 0.1)

    # --- Algorithm 1: label relaxations without extra experiments -------
    ground = train.qubit_traces(QUBIT, 0)
    excited = train.qubit_traces(QUBIT, 1)
    labels = get_relaxation_traces(ground, excited)
    fraction = labels.relaxation_fraction(excited.shape[0])
    t1 = device.qubits[QUBIT].t1_us
    physical = 1.0 - np.exp(-1.0 / t1)
    print(f"qubit {QUBIT + 1} (T1 = {t1} us):")
    print(f"  Algorithm 1 flags {labels.n_relaxations} of "
          f"{excited.shape[0]} excited-labeled traces as relaxations "
          f"({100 * fraction:.1f}%; physical P(relax) = "
          f"{100 * physical:.1f}%)")

    # --- train MF and RMF ------------------------------------------------
    trusted_excited, relax = split_excited_traces(excited, labels)
    mf = MatchedFilter.fit(ground, excited)
    rmf = MatchedFilter.fit_relaxation(relax, ground)

    # --- the RMF separates what the MF confuses -------------------------
    test_ground = test.qubit_traces(QUBIT, 0)
    relaxed_mask = test.relaxed[test.labels[:, QUBIT] == 1, QUBIT]
    test_excited = test.qubit_traces(QUBIT, 1)
    test_relaxed = test_excited[relaxed_mask]

    def stats(filt, traces):
        out = filt.apply(traces)
        return out.mean(), out.std()

    for name, filt in (("MF ", mf), ("RMF", rmf)):
        g_mean, g_std = stats(filt, test_ground)
        r_mean, r_std = stats(filt, test_relaxed)
        z = abs(g_mean - r_mean) / max(g_std + r_std, 1e-9)
        print(f"  {name} output: ground {g_mean:8.1f}+-{g_std:5.1f}   "
              f"relaxed {r_mean:8.1f}+-{r_std:5.1f}   separation "
              f"z={2 * z:.2f}")

    # --- end-to-end effect on misclassifications ------------------------
    config = TrainingConfig(max_epochs=150, patience=20, learning_rate=2e-3)
    print("\ntraining mf-nn and mf-rmf-nn...")
    errors = {}
    for name in ("mf-nn", "mf-rmf-nn"):
        design = make_design(name, config).fit(train, val)
        evaluation = design.evaluate(test)
        errors[name] = evaluation.misclassifications[QUBIT]
        print(f"  {name:10s} qubit {QUBIT + 1}: "
              f"{evaluation.misclassifications[QUBIT, 1]} excited-state "
              f"errors, accuracy {evaluation.per_qubit[QUBIT]:.3f}")

    recovered = errors["mf-nn"][1] - errors["mf-rmf-nn"][1]
    print(f"\nthe RMF feature recovered {recovered} excited-state "
          f"misclassifications on qubit {QUBIT + 1} (paper Fig 10)")


if __name__ == "__main__":
    main()
