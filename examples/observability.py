"""The serving stack's flight recorder, metrics, and health checks.

Turns every observability surface on at once and shows what each one is
for:

1. the structured JSONL event log (``repro.obs.log``) capturing every
   lifecycle edge — server start/stop, worker spawns, swaps, drift — to
   a file you can grep and post-process,
2. end-to-end request tracing at ``trace_sample_rate=1.0``: each request
   carries a trace context through submit -> batch -> dispatch -> worker
   -> scatter -> resolve, and the :class:`~repro.obs.trace.FlightRecorder`
   retains the slowest traces plus a uniform sample,
3. ``server.healthcheck()``: one probe through the full pipeline, a
   per-shard healthy/unhealthy verdict,
4. the unified :class:`~repro.obs.metrics.MetricsRegistry`: server,
   engine, and flight-recorder counters in one exportable snapshot,
5. continuous telemetry (``telemetry_interval_s``): a background sampler
   polling that registry into windowed time series, with the default
   SLO alert rules evaluating every sample,
6. a postmortem debug bundle (``write_debug_bundle``) capturing all of
   the above in one directory, rendered by the ops console.

Answering "why is p99 high?" becomes: find the slowest retained trace,
read its span breakdown, and see which stage ate the time.

Run:  PYTHONPATH=src python examples/observability.py \
          [--events events.jsonl] [--bundle bundle_dir]
"""

import argparse

import numpy as np

from repro.core import FAST_CONFIG
from repro.obs import render_console, write_debug_bundle
from repro.obs.log import configure_event_log
from repro.readout import five_qubit_paper_device, generate_dataset
from repro.serve import ServerConfig, build_sharded_server, closed_loop

DESIGNS = ("mf", "mf-rmf-svm")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", default="observability_events.jsonl",
                        help="JSONL event-log sink (default: %(default)s)")
    parser.add_argument("--bundle", default="observability_bundle",
                        help="debug-bundle directory (default: %(default)s)")
    args = parser.parse_args()

    # 1. Event log: every lifecycle edge lands in this file as one JSON
    # object per line. Silent by default — this one call opts in.
    configure_event_log(path=args.events)
    print(f"event log -> {args.events}")

    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=40,
                            rng=np.random.default_rng(7))
    train, val, test = data.split(np.random.default_rng(8), 0.5, 0.1)

    print(f"calibrating {DESIGNS}, 2 feedline shards, tracing every "
          f"request, telemetry every 50 ms...")
    server = build_sharded_server(DESIGNS, train, val, n_shards=2,
                                  training=FAST_CONFIG,
                                  config=ServerConfig(
                                      max_wait_ms=1.0,
                                      trace_sample_rate=1.0,
                                      telemetry_interval_s=0.05))
    with server:
        # 2. Health check before traffic: one probe, per-shard verdicts.
        report = server.healthcheck(budget_s=10.0)
        print(f"\nhealthcheck: healthy={report.healthy}")
        for shard in report.shards:
            print(f"  shard {shard.shard_index}: alive={shard.alive} "
                  f"rtt={shard.round_trip_ms:.2f} ms "
                  f"engine v{shard.engine_version}")

        # 3. Load with tracing on: the flight recorder retains the
        # slowest traces and a uniform sample of the rest.
        load = closed_loop(server, test, n_clients=16,
                           requests_per_client=25, seed=9)
        print(f"\nload: {load.completed} requests, "
              f"{load.traces_per_s():,.0f} traces/s, "
              f"p50 {load.latency_ms(50):.2f} ms, "
              f"p999 {load.latency_ms(99.9):.2f} ms")

        recorder = server.flight_recorder
        [slowest] = recorder.slowest()[:1]
        print(f"\nslowest of {recorder.recorded} recorded traces "
              f"(id {slowest.trace_id}, "
              f"{1000 * slowest.duration_s:.2f} ms):")
        base = slowest.started_at
        for name, start, end in slowest.sorted_spans():
            print(f"  {1000 * (start - base):7.3f} -> "
                  f"{1000 * (end - base):7.3f} ms  {name}")
        assert slowest.gaps(5e-3) == [], "stitched trace has a hole"

        # 4. One registry, every component. export_text() is the
        # flat human-readable view; export_dict() the nested one.
        metrics_text = server.metrics.export_text()
        print("\nmetrics registry (excerpt):")
        for line in metrics_text.splitlines():
            if any(k in line for k in ("submitted", "completed", "batches",
                                       "recorded", "slowest_ms")):
                print(f"  {line}")

        # 5. The background sampler has been folding that registry into
        # windowed time series the whole time; the default alert rules
        # judged every sample and stayed quiet on this clean load.
        store = server.telemetry.store
        print(f"\ntelemetry: {int(server.telemetry.samples)} samples, "
              f"~{store.rate('serve.completed', window_s=30.0) or 0.0:,.0f} "
              f"requests/s over the last window, "
              f"{len(server.alerts.active())} alerts firing")

        # 6. Everything above, snapshotted into one postmortem directory.
        bundle = write_debug_bundle(args.bundle, server=server,
                                    event_log_path=args.events)
    print(f"\ndebug bundle -> {bundle}")

    # The ops console renders a saved bundle (or a live server) as a
    # plain-text dashboard; `python -m repro.obs.console <dir>` does the
    # same from a shell.
    print(render_console(bundle))


if __name__ == "__main__":
    main()
