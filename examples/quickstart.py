"""Quickstart: train and evaluate the HERQULES discriminator.

Simulates a calibration dataset for the five-qubit paper device, fits the
mf-rmf-nn design (matched filters + relaxation matched filters + a small
FNN), and reports per-qubit and cumulative readout accuracy next to the
simple designs it improves upon.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import TrainingConfig, make_design, relative_improvement
from repro.readout import five_qubit_paper_device, generate_dataset


def main():
    device = five_qubit_paper_device()
    print(f"device: {device.n_qubits} frequency-multiplexed qubits, "
          f"{device.readout_duration_ns:.0f} ns readout, "
          f"{device.sampling_rate_msps:.0f} MS/s ADC")

    print("simulating calibration data (250 shots per basis state)...")
    data = generate_dataset(device, shots_per_state=250,
                            rng=np.random.default_rng(7))
    train, val, test = data.split(np.random.default_rng(8),
                                  train_fraction=0.5, val_fraction=0.1)
    print(f"split: {train.n_traces} train / {val.n_traces} val / "
          f"{test.n_traces} test traces\n")

    config = TrainingConfig(max_epochs=250, patience=25, learning_rate=2e-3,
                            batch_size=128)
    results = {}
    for name in ("centroid", "mf", "mf-rmf-svm", "mf-rmf-nn"):
        design = make_design(name, config).fit(train, val)
        results[name] = design.evaluate(test)
        per_qubit = "  ".join(f"{a:.3f}" for a in results[name].per_qubit)
        print(f"{name:10s} F5Q={results[name].cumulative:.4f}  "
              f"per-qubit: {per_qubit}")

    best_rmf = max(results["mf-rmf-svm"].cumulative,
                   results["mf-rmf-nn"].cumulative)
    improvement = relative_improvement(results["mf"].cumulative, best_rmf)
    print(f"\nadding relaxation matched filters removes "
          f"{100 * improvement:.1f}% of the plain matched filter's "
          f"readout infidelity")
    print("(the paper reports a 16.4% relative improvement over its "
          "baseline on real hardware data)")


if __name__ == "__main__":
    main()
