"""Serving readout with true parallel shards: the process backend.

Builds the same micro-batching :class:`~repro.serve.ReadoutServer` as
``serve_readout.py``, but with ``backend="process"``: each feedline shard
runs in its own spawned worker process, fed trace batches through
shared-memory rings, so shard compute escapes the GIL. The script shows:

1. both backends serving the identical workload (and identical bits),
2. a zero-downtime hot swap shipping a recalibrated engine to a worker
   process as serialized pipelines,
3. the worker-side engine counters and clean reaping (exit codes).

Run:  PYTHONPATH=src python examples/process_serving.py
"""

import numpy as np

from repro.core import FAST_CONFIG, make_design
from repro.engine import ReadoutEngine
from repro.readout import five_qubit_paper_device, generate_dataset
from repro.serve import ServerConfig, build_sharded_server, closed_loop

DESIGN = "mf"
N_SHARDS = 2


def main():
    device = five_qubit_paper_device()
    data = generate_dataset(device, shots_per_state=40,
                            rng=np.random.default_rng(21))
    train, val, test = data.split(np.random.default_rng(22), 0.5, 0.1)

    print(f"calibrating {DESIGN!r} for {N_SHARDS} feedline shards...")
    reports = {}
    bits = {}
    for backend in ("thread", "process"):
        server = build_sharded_server(
            (DESIGN,), train, val, n_shards=N_SHARDS, training=FAST_CONFIG,
            config=ServerConfig(backend=backend, max_wait_ms=1.0))
        with server:
            bits[backend] = server.predict(test.demod[:32]).bits_for(DESIGN)
            reports[backend] = closed_loop(
                server, test, n_clients=8, requests_per_client=24,
                traces_per_request=4, seed=23)
            if backend == "process":
                stats = server.engine_stats()
                print(f"\nworker-side engine counters: "
                      f"{ {i: int(s['traces']) for i, s in stats.items()} } "
                      f"traces")
        if backend == "process":
            print(f"worker exit codes after stop(): "
                  f"{server.backend.exit_codes} (all reaped, no orphans)")
        r = reports[backend]
        print(f"{backend:>7}: {r.completed} requests, "
              f"{r.traces_per_s():,.0f} traces/s, "
              f"p50 {r.latency_ms(50):.2f} ms, p99 {r.latency_ms(99):.2f} ms")

    same = (bits["thread"] == bits["process"]).all()
    print(f"\nbackends agree bit-for-bit on {len(bits['thread'])} traces: "
          f"{same}")
    if not same:
        raise SystemExit("backend parity violated")

    # Zero-downtime hot swap across the process boundary: the replacement
    # engine's fitted pipelines are serialized and shipped to the worker,
    # which rebuilds at a micro-batch boundary — no request is dropped.
    server = build_sharded_server((DESIGN,), train, val, n_shards=N_SHARDS,
                                  training=FAST_CONFIG,
                                  config=ServerConfig(backend="process",
                                                      max_wait_ms=1.0))
    with server:
        server.predict(test.demod[0])
        shard = server.shards[1]
        idx = list(shard.feedline.qubit_indices)
        replacement = ReadoutEngine({DESIGN: make_design(DESIGN).fit(
            train.select_qubits(idx), val.select_qubits(idx))})
        version = server.swap_engine(1, replacement)
        response = server.predict(test.demod[0])
        print(f"\nhot swap shipped to worker process: shard 1 now at "
              f"version {version}, next request served "
              f"{response.bits_for(DESIGN).tolist()} with zero downtime "
              f"({server.stats.failed} failed requests)")


if __name__ == "__main__":
    main()
